(* Flow-analyzer tests: the interval kernel on hand-built graphs, the
   F rule family on broken economic profiles, the retired G007/G009
   aliases, the M006 soundness bridge into the model checker, the
   state-machine payout-routing rules the sweep hardened (S004/S007),
   and the headline soundness property — every concrete settlement the
   chaos runner produces lies inside the static intervals, over the
   committed corpus and freshly sampled plans. *)

module Keys = Ac3_crypto.Keys
module Amount = Ac3_chain.Amount
module Value = Ac3_chain.Value
module Contract_iface = Ac3_chain.Contract_iface
module Ac2t = Ac3_contract.Ac2t
module Econ = Ac3_contract.Econ
module Flow = Ac3_flow.Flow
module D = Ac3_verify.Diagnostic
module Flow_lint = Ac3_verify.Flow_lint
module Graph_lint = Ac3_verify.Graph_lint
module State_machine = Ac3_verify.State_machine
module Probes = Ac3_verify.Probes
module V = Ac3_verify.Verify
module Semantics = Ac3_model.Semantics
module Explore = Ac3_model.Explore
module Rules = Ac3_model.Rules
module Plan = Ac3_chaos.Plan
module Runner = Ac3_chaos.Runner
module Repro = Ac3_chaos.Repro
open Ac3_core

let coin n = Amount.of_int n

let alice = Keys.create "flow-test-alice"

let bob = Keys.create "flow-test-bob"

let dave = Keys.create "flow-test-dave"

let edge ?(amount = coin 100) from_ to_ chain =
  { Ac2t.from_pk = Keys.public from_; to_pk = Keys.public to_; amount; chain }

let ids n = Scenarios.identities ~ns:"tf" n

let two_party () = Scenarios.two_party_graph ~chain1:"c0" ~chain2:"c1" (ids 2) ~timestamp:1.0

let has rule ds = D.by_rule rule ds <> []

let rules ds = List.sort_uniq String.compare (List.map (fun d -> d.D.rule) ds)

let iv lo hi = { Flow.lo; hi }

let check_interval msg expected actual =
  Alcotest.(check (pair int64 int64)) msg (expected.Flow.lo, expected.Flow.hi)
    (actual.Flow.lo, actual.Flow.hi)

(* --- the interval kernel ------------------------------------------------- *)

(* Budget 0 on clean statics: only all-commit and all-abort settle, so
   the interval is the hull {0, commit}. *)
let test_budget0_hull () =
  let edges = [ edge ~amount:(coin 10) alice bob "c0"; edge ~amount:(coin 20) bob alice "c1" ] in
  let a = Flow.analyze_edges ~fault_budget:0 ~profile:Flow.Single_leader edges in
  let pk_a = Keys.public alice and pk_b = Keys.public bob in
  check_interval "alice on c0" (iv (-10L) 0L) (Flow.interval_for a ~pk:pk_a ~chain:"c0");
  check_interval "alice on c1" (iv 0L 20L) (Flow.interval_for a ~pk:pk_a ~chain:"c1");
  check_interval "bob on c0" (iv 0L 10L) (Flow.interval_for a ~pk:pk_b ~chain:"c0");
  check_interval "bob on c1" (iv (-20L) 0L) (Flow.interval_for a ~pk:pk_b ~chain:"c1");
  check_interval "absent pair is exactly zero" (iv 0L 0L)
    (Flow.interval_for a ~pk:pk_a ~chain:"nowhere");
  Alcotest.(check bool) "no widening" false a.Flow.widened;
  Alcotest.(check int) "no crash witnesses at budget 0" 0 (List.length a.Flow.witnesses)

(* Budget 1 under a single leader: the non-leader's outgoing edge can be
   redeemed against it while its incoming edge refunds — the classic
   Sec 3 loss, visible as a widened lower bound and an F001 witness. *)
let test_budget1_single_leader () =
  let edges = [ edge ~amount:(coin 10) alice bob "c0"; edge ~amount:(coin 20) bob alice "c1" ] in
  let a = Flow.analyze_edges ~fault_budget:1 ~profile:Flow.Single_leader edges in
  let pk_b = Keys.public bob in
  check_interval "bob can lose his whole escrow" (iv (-20L) 0L)
    (Flow.interval_for a ~pk:pk_b ~chain:"c1");
  check_interval "bob's incoming is redeemable" (iv 0L 10L)
    (Flow.interval_for a ~pk:pk_b ~chain:"c0");
  (match a.Flow.witnesses with
  | [ w ] ->
      Alcotest.(check string) "victim is the non-leader" pk_b w.Flow.victim;
      Alcotest.(check (list int)) "its own crash realizes the loss" [ 1 ] w.Flow.crash;
      Alcotest.(check string) "the redeemed edge is bob's outgoing" "c1"
        w.Flow.redeemed.Ac2t.chain
  | ws -> Alcotest.fail (Printf.sprintf "expected exactly one witness, got %d" (List.length ws)));
  Alcotest.(check (list string)) "exposure is asymmetric: only the non-leader carries it"
    [ pk_b ] a.Flow.asymmetric;
  (* Budget monotony: more crashes cannot reach more than the per-edge
     independent hull, so the intervals are stable above budget 1. *)
  let a2 = Flow.analyze_edges ~fault_budget:3 ~profile:Flow.Single_leader edges in
  List.iter2
    (fun (x : Flow.exposure) (y : Flow.exposure) ->
      check_interval "budget-3 equals budget-1" x.Flow.interval y.Flow.interval)
    a.Flow.exposures a2.Flow.exposures

(* The witness profile settles globally: mixed settlements are
   unreachable, so even under crashes nobody ends below -out and the
   all-commit gain stays the ceiling. *)
let test_budget1_witness () =
  let edges = [ edge ~amount:(coin 10) alice bob "c0"; edge ~amount:(coin 20) bob alice "c1" ] in
  let a = Flow.analyze_edges ~fault_budget:1 ~profile:Flow.Witness edges in
  check_interval "bob on c1" (iv (-20L) 0L) (Flow.interval_for a ~pk:(Keys.public bob) ~chain:"c1");
  check_interval "bob on c0" (iv 0L 10L) (Flow.interval_for a ~pk:(Keys.public bob) ~chain:"c0");
  Alcotest.(check int) "no single-leader crash witnesses" 0 (List.length a.Flow.witnesses);
  Alcotest.(check int) "no asymmetric exposure" 0 (List.length a.Flow.asymmetric)

(* Secret knowledge propagates backward from the leader: a recipient
   with no directed path to the leader can never redeem, so its
   incoming value does not raise the upper bound. *)
let test_redeemable_narrowing () =
  let edges =
    [
      edge ~amount:(coin 10) alice bob "c0";
      edge ~amount:(coin 20) bob alice "c1";
      edge ~amount:(coin 5) bob dave "c2" (* dave has no outgoing edge: no path to alice *);
    ]
  in
  let a = Flow.analyze_edges ~fault_budget:1 ~profile:Flow.Single_leader edges in
  check_interval "unredeemable incoming is flattened" (iv 0L 0L)
    (Flow.interval_for a ~pk:(Keys.public dave) ~chain:"c2");
  (* The same edge under the witness profile needs no secret. *)
  let w = Flow.analyze_edges ~fault_budget:1 ~profile:Flow.Witness edges in
  check_interval "witness settlement needs no path" (iv 0L 5L)
    (Flow.interval_for w ~pk:(Keys.public dave) ~chain:"c2")

let test_interval_ops () =
  Alcotest.(check bool) "contains lo" true (Flow.contains (iv (-5L) 3L) (-5L));
  Alcotest.(check bool) "contains hi" true (Flow.contains (iv (-5L) 3L) 3L);
  Alcotest.(check bool) "outside" false (Flow.contains (iv (-5L) 3L) 4L);
  Alcotest.(check bool) "subsumes" true (Flow.subsumes (iv (-5L) 3L) (iv 0L 2L));
  Alcotest.(check bool) "not subsumes" false (Flow.subsumes (iv 0L 2L) (iv (-5L) 3L))

(* --- the F rules on broken economic profiles ----------------------------- *)

let broken base = Econ.swap ~code_id:base

let test_f005_nonconserving () =
  let edges = [ edge alice bob "c0" ] in
  let stranding = { (broken "half") with Econ.payout_num = 1; payout_den = 2 } in
  let a = Flow.analyze_edges ~econ:stranding ~profile:Flow.Witness edges in
  (match a.Flow.issues with
  | [ Flow.Stranding { payout; deposit; _ } ] ->
      Alcotest.(check int64) "half stranded" 50L payout;
      Alcotest.(check int64) "full deposit" 100L deposit
  | _ -> Alcotest.fail "expected one stranding issue");
  Alcotest.(check bool) "F005 is an error" true
    (has "F005-nonconserving" (D.errors (Flow_lint.of_analysis a)));
  let minting = { (broken "double") with Econ.payout_num = 2; payout_den = 1 } in
  let m = Flow.analyze_edges ~econ:minting ~profile:Flow.Witness edges in
  (match m.Flow.issues with
  | [ Flow.Minting _ ] -> ()
  | _ -> Alcotest.fail "expected one minting issue");
  Alcotest.(check bool) "minting is F005 too" true
    (has "F005-nonconserving" (D.errors (Flow_lint.of_analysis m)))

let test_f003_no_refund () =
  let econ = { (broken "no-refund") with Econ.refundable = false } in
  let a = Flow.analyze_edges ~econ ~profile:Flow.Witness [ edge alice bob "c0" ] in
  (match a.Flow.issues with
  | [ Flow.No_refund _ ] -> ()
  | _ -> Alcotest.fail "expected one no-refund issue");
  Alcotest.(check bool) "F003 is an error" true
    (has "F003-stranded-deposit" (D.errors (Flow_lint.of_analysis a)))

let test_f004_fee_bleed () =
  let econ = { (broken "bleed") with Econ.submit_fee = coin 5; max_retries = None } in
  let a = Flow.analyze_edges ~econ ~profile:Flow.Witness [ edge alice bob "c0" ] in
  Alcotest.(check bool) "fee bleed detected" true a.Flow.fee_bleed;
  let ds = Flow_lint.of_analysis a in
  Alcotest.(check bool) "F004 reported" true (has "F004-fee-bleed" ds);
  Alcotest.(check bool) "as a warning, not an error" false (has "F004-fee-bleed" (D.errors ds))

let test_screen () =
  let graph = two_party () in
  Alcotest.(check int) "shipped contracts screen clean" 0
    (List.length (Flow.screen ~profile:Flow.Witness graph));
  let econ = { (broken "half") with Econ.payout_num = 1; payout_den = 2 } in
  Alcotest.(check bool) "broken econ is caught pre-launch" true
    (Flow.screen ~econ ~profile:Flow.Witness graph <> [])

let test_f006_widening () =
  let edges = [ edge ~amount:(coin 10) alice bob "c0"; edge ~amount:(coin 20) bob alice "c1" ] in
  let a =
    Flow.analyze_edges ~fault_budget:0 ~static_races:true ~profile:Flow.Single_leader edges
  in
  Alcotest.(check bool) "budget 0 widened by a static race" true a.Flow.widened;
  check_interval "bob widened to the faulted hull" (iv (-20L) 0L)
    (Flow.interval_for a ~pk:(Keys.public bob) ~chain:"c1");
  Alcotest.(check bool) "F006 reported" true
    (has "F006-widened-races" (Flow_lint.of_analysis a))

(* --- the retired G007/G009 aliases --------------------------------------- *)

let test_conservation_aliases () =
  let edges = [ edge alice bob "btc" ] in
  let ds = Flow_lint.conservation edges in
  Alcotest.(check (list string)) "alias rules survive the retirement"
    [ "G007-net-payer"; "G009-value-delta" ] (rules ds);
  (* Byte-compatible renderings of the original pass-1 sums. *)
  let text rule = String.concat "\n" (List.map D.to_string (D.by_rule rule ds)) in
  Alcotest.(check bool) "G009 still prints signed per-chain deltas" true
    (Astring.String.is_infix ~affix:"commit delta: -100@btc" (text "G009-value-delta"));
  Alcotest.(check bool) "G007 still counts the paying edges" true
    (Astring.String.is_infix ~affix:"pays on 1 edge(s) but receives on none"
       (text "G007-net-payer"));
  (* The full graph pass emits them through the same alias. *)
  let g = Ac2t.create ~edges ~timestamp:1.0 in
  let full = Graph_lint.lint g in
  Alcotest.(check bool) "lint keeps G007" true (has "G007-net-payer" full);
  Alcotest.(check bool) "lint keeps G009" true (has "G009-value-delta" full)

(* A clean swap pair has no net payer and budget-0 flow adds no errors
   to the preflights. *)
let test_preflights_stay_clean () =
  let graph = two_party () in
  Alcotest.(check bool) "herlihy preflight clean" false
    (D.has_errors
       (V.herlihy_preflight ~graph ~delta:15.0 ~timelock_slack:2.0 ~start_time:0.0));
  Alcotest.(check bool) "ac3wn preflight clean" false (D.has_errors (V.ac3wn_preflight ~graph));
  Alcotest.(check bool) "but the exposure summary is there" true
    (has "F000-exposure" (V.ac3wn_preflight ~graph))

(* --- M006: the model checker cross-checks the intervals ------------------- *)

let test_m006_soundness_bridge () =
  let graph = two_party () in
  match
    Semantics.make ~protocol:Semantics.Herlihy ~graph ~delta:15.0 ~timelock_slack:2.0
      ~start_time:0.0 ~crash_budget:1
  with
  | Error e -> Alcotest.fail e
  | Ok model ->
      let t = Explore.run model in
      (* Honest budget-matched intervals: every reachable settlement is
         inside them, M006 stays silent — even though Herlihy loses
         deposits here (M001 fires elsewhere). *)
      let honest = Flow.analyze ~fault_budget:1 ~profile:Flow.Single_leader graph in
      let ds, _ = Rules.check ~flow:honest t in
      Alcotest.(check bool) "honest intervals are sound" false (has "M006-interval-unsound" ds);
      (* Deliberately narrowed intervals: any settled transfer escapes
         {0,0}, so the checker must catch the (injected) unsoundness. *)
      let narrowed =
        {
          honest with
          Flow.exposures =
            List.map
              (fun (x : Flow.exposure) -> { x with Flow.interval = iv 0L 0L })
              honest.Flow.exposures;
        }
      in
      let ds, vs = Rules.check ~flow:narrowed t in
      Alcotest.(check bool) "narrowed intervals are refuted" true
        (has "M006-interval-unsound" ds);
      (match List.find_opt (fun (v : Rules.violation) -> v.Rules.rule = "M006-interval-unsound") vs with
      | Some v -> Alcotest.(check bool) "with a replayable schedule" true (v.Rules.schedule <> [])
      | None -> Alcotest.fail "M006 violation missing from the violation list")

(* --- S004/S007: payout accounting in the state-machine pass --------------- *)

(* A contract that releases more than its deposit used to crash the
   explorer with an uncaught Amount overflow; now S004 reports it. *)
module Overpay = struct
  let code_id = "test-overpay"

  let init _ctx _args = Ok (Value.String "P")

  let call ctx ~state:_ ~fn ~args:_ =
    match fn with
    | "drain" ->
        Contract_iface.ok
          ~payouts:[ (Keys.address_of_public ctx.Contract_iface.sender, coin 2000) ]
          (Value.String "done")
    | _ -> Contract_iface.reject "unknown fn %s" fn
end

let overpay_spec () =
  let deployer = Keys.public alice in
  {
    State_machine.code = (module Overpay : Contract_iface.CODE);
    chain_id = "c0";
    deployer;
    deposit = coin 1000;
    init_args = Value.Unit;
    init_time = 0.0;
    probes =
      [ { State_machine.label = "drain"; fn = "drain"; args = Value.Unit; caller = deployer; time = 1.0 } ];
    classify = (function Value.String "done" -> State_machine.Redeemed | _ -> State_machine.Published);
    payee_of = None;
    max_nodes = 100;
  }

let test_s004_over_release_no_crash () =
  match State_machine.explore (overpay_spec ()) with
  | Error e -> Alcotest.fail e
  | Ok auto ->
      Alcotest.(check bool) "over-release is an S004 error" true
        (has "S004-conservation" (D.errors (State_machine.check auto)))

let test_s007_misrouted_payout () =
  (* The shipped contracts route every payout to the settlement payee. *)
  Alcotest.(check bool) "htlc routes payouts correctly" false
    (has "S007-misrouted-payout" (V.contract (Probes.htlc ())));
  (* Declaring that no payout is legitimate turns every release into a
     misroute: totals still balance, S004 stays quiet, S007 fires. *)
  let rogue = { (Probes.htlc ()) with State_machine.payee_of = Some (fun _ _ -> None) } in
  let ds = V.contract rogue in
  Alcotest.(check bool) "misroute reported" true (has "S007-misrouted-payout" (D.errors ds));
  Alcotest.(check bool) "conservation alone does not catch it" false
    (has "S004-conservation" ds)

(* --- soundness against the dynamic runner --------------------------------- *)

let corpus_dir () =
  if Sys.file_exists "chaos_corpus" then "chaos_corpus" else Filename.concat "test" "chaos_corpus"

let corpus_files () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Every committed reproducer — including the deposit-losing crash
   schedules — settles inside the static intervals: losing a deposit to
   a crash is exactly what the budget-1 lower bound predicts. *)
let test_corpus_inside_intervals () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      let repro = Repro.of_string (read_file path) in
      let reports =
        Runner.run_all ~spec:repro.Repro.spec ~plan:repro.Repro.plan ~instrument:false ()
      in
      List.iter
        (fun (r : Runner.report) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: %s settles inside its intervals" path
               (Runner.protocol_name r.Runner.protocol))
            0
            (List.length r.Runner.flow_violations))
        reports)
    files

(* The corpus carries the acceptance-criterion F001 reproducer: exported
   by `ac3 flow --export`, confirmed dynamically, replaying bit-exact. *)
let test_f001_reproducer_confirmed () =
  let path = Filename.concat (corpus_dir ()) "flow_f001_two_party.json" in
  let repro = Repro.of_string (read_file path) in
  Alcotest.(check bool) "the note names the F001 witness" true
    (Astring.String.is_infix ~affix:"F001" repro.Repro.note);
  Alcotest.(check bool) "herlihy loses a deposit under the witness crash" true
    (List.exists
       (fun (e : Repro.expectation) ->
         e.Repro.protocol = Runner.P_herlihy && e.Repro.deposit_lost)
       repro.Repro.expect);
  Alcotest.(check bool) "and the reproducer replays bit-exact" true
    (Repro.replay_ok (Repro.replay repro))

(* Freshly sampled fault plans: the runner's budget-1 cross-check never
   fires, for any seed. *)
let qcheck_sampled_runs_inside_intervals =
  QCheck.Test.make ~name:"sampled chaos runs settle inside the static intervals" ~count:3
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 400))
    (fun seed ->
      let spec, plan = Plan.sample ~seed () in
      let reports = Runner.run_all ~spec ~plan ~instrument:false () in
      List.for_all (fun (r : Runner.report) -> r.Runner.flow_violations = []) reports)

let () =
  Alcotest.run "flow"
    [
      ( "intervals",
        [
          Alcotest.test_case "budget 0 is the commit hull" `Quick test_budget0_hull;
          Alcotest.test_case "budget 1 single-leader widens the victim" `Quick
            test_budget1_single_leader;
          Alcotest.test_case "witness profile excludes mixed settlements" `Quick
            test_budget1_witness;
          Alcotest.test_case "secretless recipients cannot gain" `Quick test_redeemable_narrowing;
          Alcotest.test_case "interval algebra" `Quick test_interval_ops;
          Alcotest.test_case "static races widen budget 0 (F006)" `Quick test_f006_widening;
        ] );
      ( "econ-rules",
        [
          Alcotest.test_case "F005 minting and stranding" `Quick test_f005_nonconserving;
          Alcotest.test_case "F003 missing refund path" `Quick test_f003_no_refund;
          Alcotest.test_case "F004 unbounded fee bleed" `Quick test_f004_fee_bleed;
          Alcotest.test_case "pre-launch screen" `Quick test_screen;
        ] );
      ( "aliases",
        [
          Alcotest.test_case "G007/G009 byte-compatible aliases" `Quick
            test_conservation_aliases;
          Alcotest.test_case "preflights stay clean on swaps" `Quick test_preflights_stay_clean;
        ] );
      ( "model-bridge",
        [ Alcotest.test_case "M006 refutes narrowed intervals" `Quick test_m006_soundness_bridge ]
      );
      ( "state-machine",
        [
          Alcotest.test_case "S004 over-release without a crash" `Quick
            test_s004_over_release_no_crash;
          Alcotest.test_case "S007 misrouted payouts" `Quick test_s007_misrouted_payout;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "corpus settles inside intervals" `Slow test_corpus_inside_intervals;
          Alcotest.test_case "F001 reproducer is confirmed" `Quick test_f001_reproducer_confirmed;
          QCheck_alcotest.to_alcotest qcheck_sampled_runs_inside_intervals;
        ] );
    ]
