(* Tests for the cryptographic substrate: SHA-256 against NIST vectors,
   HMAC against RFC 4231, Merkle proofs, hash-based signatures, and
   multisignatures. *)

open Ac3_crypto

(* --- Hex -------------------------------------------------------------- *)

let test_hex_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) "roundtrip" s (Hex.decode (Hex.encode s)))
    [ ""; "a"; "abc"; "\x00\xff\x80"; String.init 256 Char.chr ]

let test_hex_cases () =
  Alcotest.(check string) "lowercase output" "00ff10" (Hex.encode "\x00\xff\x10");
  Alcotest.(check string) "uppercase accepted" "\x00\xff\x10" (Hex.decode "00FF10")

let test_hex_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad char" (Invalid_argument "Hex.decode: invalid character 'z'")
    (fun () -> ignore (Hex.decode "zz"))

let qcheck_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrips any string" ~count:500 QCheck.string (fun s ->
      Hex.decode (Hex.encode s) = s)

(* --- SHA-256 ----------------------------------------------------------- *)

(* NIST FIPS 180-4 test vectors. *)
let sha256_vectors =
  [
    ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
  ]

let test_sha256_vectors () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) ("sha256 of " ^ input) expected (Sha256.hexdigest input))
    sha256_vectors

let test_sha256_million_a () =
  (* The classic one-million-'a' vector, fed in uneven chunks to exercise
     the streaming interface. *)
  let ctx = Sha256.init () in
  let chunk = String.make 999 'a' in
  for _ = 1 to 1001 do
    Sha256.feed_string ctx chunk
  done;
  Sha256.feed_string ctx (String.make 1 'a');
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Hex.encode (Sha256.finalize ctx))

let test_sha256_streaming_matches_oneshot () =
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let ctx = Sha256.init () in
  let rec feed pos =
    if pos < String.length data then begin
      let len = min 37 (String.length data - pos) in
      Sha256.feed_string ctx (String.sub data pos len);
      feed (pos + len)
    end
  in
  feed 0;
  Alcotest.(check string) "streaming = one-shot" (Sha256.digest data) (Sha256.finalize ctx)

let test_sha256_digest_list () =
  Alcotest.(check string) "digest_list concatenates" (Sha256.digest "foobar")
    (Sha256.digest_list [ "foo"; "bar" ])

let qcheck_sha256_deterministic =
  QCheck.Test.make ~name:"sha256 deterministic, 32 bytes" ~count:300 QCheck.string (fun s ->
      let a = Sha256.digest s and b = Sha256.digest s in
      a = b && String.length a = 32)

let qcheck_sha256_boundary_lengths =
  (* Lengths around the 64-byte block boundary and 56-byte padding pivot. *)
  QCheck.Test.make ~name:"streaming = one-shot at block boundaries" ~count:100
    QCheck.(int_range 0 130)
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed_string ctx (String.make 1 c)) s;
      Sha256.finalize ctx = Sha256.digest s)

(* --- HMAC -------------------------------------------------------------- *)

(* RFC 4231 test cases 1, 2 and 6 (long key). *)
let test_hmac_rfc4231 () =
  Alcotest.(check string) "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (Hex.encode (Hmac.mac ~key:(String.make 20 '\x0b') "Hi There"));
  Alcotest.(check string) "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Hex.encode (Hmac.mac ~key:"Jefe" "what do ya want for nothing?"));
  Alcotest.(check string) "case 6 (long key)"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (Hex.encode
       (Hmac.mac ~key:(String.make 131 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_equal () =
  Alcotest.(check bool) "equal" true (Hmac.equal "abcd" "abcd");
  Alcotest.(check bool) "differs" false (Hmac.equal "abcd" "abce");
  Alcotest.(check bool) "length differs" false (Hmac.equal "abc" "abcd")

(* --- DRBG -------------------------------------------------------------- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed" ~label:"test" in
  let b = Drbg.create ~seed:"seed" ~label:"test" in
  Alcotest.(check string) "same stream" (Drbg.bytes a 100) (Drbg.bytes b 100)

let test_drbg_label_separation () =
  let a = Drbg.create ~seed:"seed" ~label:"one" in
  let b = Drbg.create ~seed:"seed" ~label:"two" in
  Alcotest.(check bool) "labels separate streams" true (Drbg.bytes a 32 <> Drbg.bytes b 32)

let test_drbg_expand_indexed () =
  let x = Drbg.expand ~seed:"s" ~label:"l" 5 in
  let y = Drbg.expand ~seed:"s" ~label:"l" 5 in
  let z = Drbg.expand ~seed:"s" ~label:"l" 6 in
  Alcotest.(check string) "stable" x y;
  Alcotest.(check bool) "index matters" true (x <> z);
  Alcotest.(check int) "32 bytes" 32 (String.length x)

(* --- Merkle ------------------------------------------------------------ *)

let leaves n = List.init n (fun i -> Printf.sprintf "leaf-%d" i)

let test_merkle_empty_and_single () =
  Alcotest.(check string) "empty root constant" Merkle.empty_root (Merkle.root []);
  Alcotest.(check bool) "singleton differs from empty" true
    (Merkle.root [ "x" ] <> Merkle.empty_root)

let test_merkle_proofs_all_sizes () =
  List.iter
    (fun n ->
      let ls = leaves n in
      let root = Merkle.root ls in
      List.iteri
        (fun i leaf ->
          let proof = Merkle.proof ls i in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d i=%d verifies" n i)
            true
            (Merkle.verify ~root ~leaf proof))
        ls)
    [ 1; 2; 3; 4; 5; 7; 8; 9; 16; 33 ]

let test_merkle_rejects_wrong_leaf () =
  let ls = leaves 8 in
  let root = Merkle.root ls in
  let proof = Merkle.proof ls 3 in
  Alcotest.(check bool) "wrong leaf rejected" false (Merkle.verify ~root ~leaf:"evil" proof)

let test_merkle_rejects_wrong_root () =
  let ls = leaves 8 in
  let proof = Merkle.proof ls 3 in
  Alcotest.(check bool) "wrong root rejected" false
    (Merkle.verify ~root:(Sha256.digest "other") ~leaf:(List.nth ls 3) proof)

let test_merkle_order_sensitivity () =
  Alcotest.(check bool) "leaf order matters" true
    (Merkle.root [ "a"; "b" ] <> Merkle.root [ "b"; "a" ])

let test_merkle_proof_codec_roundtrip () =
  let ls = leaves 9 in
  let proof = Merkle.proof ls 5 in
  let encoded = Codec.encode Merkle.encode_proof proof in
  let decoded = Codec.decode Merkle.decode_proof encoded in
  Alcotest.(check bool) "roundtrips and verifies" true
    (Merkle.verify ~root:(Merkle.root ls) ~leaf:(List.nth ls 5) decoded)

let qcheck_merkle_random =
  QCheck.Test.make ~name:"every leaf of a random tree verifies" ~count:50
    QCheck.(list_of_size Gen.(1 -- 40) string)
    (fun ls ->
      let root = Merkle.root ls in
      List.for_all
        (fun i -> Merkle.verify ~root ~leaf:(List.nth ls i) (Merkle.proof ls i))
        (List.init (List.length ls) Fun.id))

(* --- Codec ------------------------------------------------------------- *)

let test_codec_integers () =
  let w = Codec.Writer.create () in
  Codec.Writer.u8 w 255;
  Codec.Writer.u16 w 65535;
  Codec.Writer.u32 w 123456789;
  Codec.Writer.i64 w (-1L);
  Codec.Writer.int w 42;
  let r = Codec.Reader.create (Codec.Writer.contents w) in
  Alcotest.(check int) "u8" 255 (Codec.Reader.u8 r);
  Alcotest.(check int) "u16" 65535 (Codec.Reader.u16 r);
  Alcotest.(check int) "u32" 123456789 (Codec.Reader.u32 r);
  Alcotest.(check int64) "i64" (-1L) (Codec.Reader.i64 r);
  Alcotest.(check int) "int" 42 (Codec.Reader.int r);
  Codec.Reader.expect_end r

let test_codec_compound () =
  let encode w (s, l, o) =
    Codec.Writer.string w s;
    Codec.Writer.list w Codec.Writer.string l;
    Codec.Writer.option w Codec.Writer.bool o
  in
  let decode r =
    let s = Codec.Reader.string r in
    let l = Codec.Reader.list r Codec.Reader.string in
    let o = Codec.Reader.option r Codec.Reader.bool in
    (s, l, o)
  in
  let v = ("hello", [ "a"; ""; "ccc" ], Some true) in
  Alcotest.(check (triple string (list string) (option bool)))
    "roundtrip" v
    (Codec.decode decode (Codec.encode encode v))

let test_codec_trailing_rejected () =
  Alcotest.check_raises "trailing bytes" (Codec.Decode_error "Codec: 1 trailing bytes")
    (fun () -> ignore (Codec.decode Codec.Reader.u8 "ab"))

let test_codec_truncation_rejected () =
  let raised =
    try
      ignore (Codec.decode Codec.Reader.u32 "ab");
      false
    with Codec.Decode_error _ -> true
  in
  Alcotest.(check bool) "truncated input rejected" true raised

let qcheck_codec_float =
  QCheck.Test.make ~name:"float encoding is exact" ~count:300 QCheck.float (fun f ->
      let f' = Codec.decode Codec.Reader.float (Codec.encode Codec.Writer.float f) in
      Int64.bits_of_float f = Int64.bits_of_float f')

(* --- JSON --------------------------------------------------------------- *)

module Json = Codec.Json

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("n", Json.Int (-42));
        ("x", Json.Float 1.5);
        ("s", Json.String "quote \" backslash \\ newline \n tab \t");
        ("xs", Json.List [ Json.Int 1; Json.Float 0.25; Json.String "" ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  Alcotest.(check bool) "compact roundtrips" true (Json.of_string (Json.to_string v) = v);
  Alcotest.(check bool) "pretty roundtrips" true (Json.of_string (Json.to_string_pretty v) = v)

let test_json_deterministic () =
  let v = Json.Obj [ ("b", Json.Int 2); ("a", Json.Int 1) ] in
  (* printing preserves field order and is stable call to call *)
  Alcotest.(check string) "stable" (Json.to_string v) (Json.to_string v);
  Alcotest.(check string) "order preserved" {|{"b":2,"a":1}|} (Json.to_string v)

let test_json_rejects_malformed () =
  let rejects s =
    match Json.of_string s with
    | exception Codec.Decode_error _ -> ()
    | _ -> Alcotest.failf "accepted malformed JSON %S" s
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\":1} trailing";
  rejects "\"unterminated";
  rejects "nul"

let qcheck_json_float =
  QCheck.Test.make ~name:"json float printing round-trips exactly" ~count:300
    QCheck.(map (fun f -> if Float.is_nan f || Float.is_integer f then 0.5 else f) float)
    (fun f ->
      (not (Float.is_finite f))
      || Json.of_string (Json.to_string (Json.Float f)) = Json.Float f)

(* --- Lamport ------------------------------------------------------------ *)

let test_lamport_sign_verify () =
  let sk = Lamport.generate ~seed:"lamport-test" in
  let pk = Lamport.public sk in
  let s = Lamport.sign sk "hello world" in
  Alcotest.(check bool) "verifies" true (Lamport.verify pk "hello world" s);
  Alcotest.(check bool) "wrong message rejected" false (Lamport.verify pk "hello worle" s)

let test_lamport_wrong_key () =
  let sk1 = Lamport.generate ~seed:"k1" in
  let sk2 = Lamport.generate ~seed:"k2" in
  let s = Lamport.sign sk1 "msg" in
  Alcotest.(check bool) "other key rejects" false (Lamport.verify (Lamport.public sk2) "msg" s)

let test_lamport_size () =
  let sk = Lamport.generate ~seed:"size" in
  let s = Lamport.sign sk "m" in
  Alcotest.(check int) "512 x 32 bytes" (512 * 32) (Lamport.signature_size s)

(* --- WOTS --------------------------------------------------------------- *)

let test_wots_sign_verify () =
  let sk = Wots.generate ~seed:"wots-test" ~tag:"t0" in
  let pk = Wots.public sk in
  let s = Wots.sign sk "attack at dawn" in
  Alcotest.(check bool) "verifies" true (Wots.verify ~tag:"t0" pk "attack at dawn" s);
  Alcotest.(check bool) "wrong message rejected" false (Wots.verify ~tag:"t0" pk "attack at dusk" s)

let test_wots_tag_separation () =
  let sk = Wots.generate ~seed:"wots-test" ~tag:"t0" in
  let pk = Wots.public sk in
  let s = Wots.sign sk "msg" in
  Alcotest.(check bool) "wrong tag rejected" false (Wots.verify ~tag:"t1" pk "msg" s)

let test_wots_tampered_signature () =
  let sk = Wots.generate ~seed:"wots-tamper" ~tag:"t" in
  let pk = Wots.public sk in
  let s = Wots.sign sk "msg" in
  let s' = Array.copy s in
  s'.(0) <- Sha256.digest "garbage";
  Alcotest.(check bool) "tampered chain rejected" false (Wots.verify ~tag:"t" pk "msg" s')

let test_wots_codec_roundtrip () =
  let sk = Wots.generate ~seed:"wots-codec" ~tag:"t" in
  let s = Wots.sign sk "msg" in
  let s' = Codec.decode Wots.decode_signature (Codec.encode Wots.encode_signature s) in
  Alcotest.(check bool) "roundtrip verifies" true (Wots.verify ~tag:"t" (Wots.public sk) "msg" s')

(* --- MSS ---------------------------------------------------------------- *)

let test_mss_many_messages () =
  let sk = Mss.generate ~height:3 ~seed:"mss-test" () in
  let pk = Mss.public sk in
  Alcotest.(check int) "capacity" 8 (Mss.capacity sk);
  for i = 1 to 8 do
    let msg = Printf.sprintf "message %d" i in
    let s = Mss.sign sk msg in
    Alcotest.(check bool) (Printf.sprintf "sig %d verifies" i) true (Mss.verify pk msg s);
    Alcotest.(check bool)
      (Printf.sprintf "sig %d binds message" i)
      false
      (Mss.verify pk "other" s)
  done

let test_mss_exhaustion () =
  let sk = Mss.generate ~height:1 ~seed:"mss-exhaust" () in
  ignore (Mss.sign sk "a");
  ignore (Mss.sign sk "b");
  Alcotest.(check int) "spent" 0 (Mss.remaining sk);
  Alcotest.check_raises "exhausted" Mss.Key_exhausted (fun () -> ignore (Mss.sign sk "c"))

let test_mss_cross_key_rejection () =
  let sk1 = Mss.generate ~height:2 ~seed:"mss-a" () in
  let sk2 = Mss.generate ~height:2 ~seed:"mss-b" () in
  let s = Mss.sign sk1 "msg" in
  Alcotest.(check bool) "other key rejects" false (Mss.verify (Mss.public sk2) "msg" s)

let test_mss_codec_roundtrip () =
  let sk = Mss.generate ~height:2 ~seed:"mss-codec" () in
  let s = Mss.sign sk "msg" in
  let s' = Codec.decode Mss.decode_signature (Codec.encode Mss.encode_signature s) in
  Alcotest.(check bool) "roundtrip verifies" true (Mss.verify (Mss.public sk) "msg" s')

(* --- Keys / identities --------------------------------------------------- *)

let test_keys_deterministic () =
  let a = Keys.create "alice-crypto-test" in
  let b = Keys.create "alice-crypto-test" in
  Alcotest.(check string) "same public key" (Keys.public a) (Keys.public b);
  Alcotest.(check string) "same address" (Keys.address a) (Keys.address b)

let test_keys_sign_verify () =
  let id = Keys.create "signer-crypto-test" in
  let s = Keys.sign id "payload" in
  Alcotest.(check bool) "verifies" true (Keys.verify (Keys.public id) "payload" s);
  Alcotest.(check bool) "binds message" false (Keys.verify (Keys.public id) "payloae" s)

let test_keys_address_len () =
  let id = Keys.create "addr-crypto-test" in
  Alcotest.(check int) "20 bytes" Keys.address_len (String.length (Keys.address id))

(* --- Multisig ------------------------------------------------------------ *)

let test_multisig_verify () =
  let ids = [ Keys.create "ms-a"; Keys.create "ms-b"; Keys.create "ms-c" ] in
  let ms = Multisig.create ~message:"graph D at t" ids in
  let expected = List.map Keys.public ids in
  Alcotest.(check bool) "verifies" true (Multisig.verify ~expected_signers:expected ms)

let test_multisig_signer_set_mismatch () =
  let ids = [ Keys.create "ms-a"; Keys.create "ms-b" ] in
  let ms = Multisig.create ~message:"m" ids in
  let wrong = [ Keys.public (Keys.create "ms-a"); Keys.public (Keys.create "ms-z") ] in
  Alcotest.(check bool) "wrong signer set rejected" false
    (Multisig.verify ~expected_signers:wrong ms)

let test_multisig_missing_signer () =
  let a = Keys.create "ms-a" and b = Keys.create "ms-b" in
  let ms = Multisig.create ~message:"m" [ a ] in
  Alcotest.(check bool) "incomplete set rejected" false
    (Multisig.verify ~expected_signers:[ Keys.public a; Keys.public b ] ms)

let test_multisig_order_insensitive () =
  let a = Keys.create "ms-a" and b = Keys.create "ms-b" in
  let ms = Multisig.create ~message:"m2" [ b; a ] in
  Alcotest.(check bool) "any signing order accepted" true
    (Multisig.verify ~expected_signers:[ Keys.public a; Keys.public b ] ms)

let test_multisig_id_distinct () =
  let a = Keys.create "ms-a" in
  let m1 = Multisig.create ~message:"m1" [ a ] in
  let m2 = Multisig.create ~message:"m2" [ a ] in
  Alcotest.(check bool) "ids differ per message" true (Multisig.id m1 <> Multisig.id m2)

(* --- Additional edge cases ------------------------------------------------ *)

let test_sha256_digest2 () =
  Alcotest.(check string) "double hash composes" (Sha256.digest (Sha256.digest "x"))
    (Sha256.digest2 "x")

let test_merkle_proof_out_of_range () =
  Alcotest.check_raises "negative index" (Invalid_argument "Merkle.proof: index out of range")
    (fun () -> ignore (Merkle.proof [ "a" ] (-1)));
  Alcotest.check_raises "past end" (Invalid_argument "Merkle.proof: index out of range")
    (fun () -> ignore (Merkle.proof [ "a" ] 1))

let test_merkle_proof_lengths () =
  (* Height grows logarithmically. *)
  let n8 = Merkle.proof_length (Merkle.proof (leaves 8) 0) in
  let n9 = Merkle.proof_length (Merkle.proof (leaves 9) 0) in
  Alcotest.(check int) "8 leaves -> 3 levels" 3 n8;
  Alcotest.(check int) "9 leaves -> 4 levels" 4 n9

let qcheck_merkle_cross_index_rejection =
  QCheck.Test.make ~name:"a proof for index i never verifies leaf j<>i" ~count:50
    QCheck.(pair (int_range 2 20) (int_range 0 100))
    (fun (n, k) ->
      let ls = leaves n in
      let i = k mod n in
      let j = (i + 1) mod n in
      let root = Merkle.root ls in
      not (Merkle.verify ~root ~leaf:(List.nth ls j) (Merkle.proof ls i)))

let test_keys_distinct_labels_distinct_keys () =
  let a = Keys.create "distinct-a" and b = Keys.create "distinct-b" in
  Alcotest.(check bool) "different pks" true (Keys.public a <> Keys.public b);
  Alcotest.(check bool) "different addresses" true (Keys.address a <> Keys.address b)

let test_keys_signature_not_transferable () =
  let a = Keys.create "xfer-a" and b = Keys.create "xfer-b" in
  let s = Keys.sign a "msg" in
  Alcotest.(check bool) "b's key rejects a's signature" false (Keys.verify (Keys.public b) "msg" s)

let test_keys_remaining_decreases () =
  let id = Keys.create ~height:3 "remaining-counter" in
  let before = Keys.remaining_signatures id in
  ignore (Keys.sign id "x");
  Alcotest.(check int) "one fewer" (before - 1) (Keys.remaining_signatures id)

let test_multisig_codec_roundtrip () =
  let ids = [ Keys.create "msc-a"; Keys.create "msc-b" ] in
  let ms = Multisig.create ~message:"payload" ids in
  let ms' = Multisig.of_bytes (Multisig.to_bytes ms) in
  Alcotest.(check bool) "roundtrip verifies" true
    (Multisig.verify ~expected_signers:(List.map Keys.public ids) ms');
  Alcotest.(check string) "same id" (Hex.encode (Multisig.id ms)) (Hex.encode (Multisig.id ms'))

let test_multisig_extend () =
  let a = Keys.create "ext-a" and b = Keys.create "ext-b" in
  let ms = Multisig.create ~message:"m" [ a ] in
  let ms = Multisig.extend ms b in
  Alcotest.(check bool) "complete after extension" true
    (Multisig.verify ~expected_signers:[ Keys.public a; Keys.public b ] ms)

let () =
  Alcotest.run "crypto"
    [
      ( "hex",
        [
          Alcotest.test_case "roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "cases" `Quick test_hex_cases;
          Alcotest.test_case "invalid input" `Quick test_hex_invalid;
          QCheck_alcotest.to_alcotest qcheck_hex_roundtrip;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "NIST vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a (streaming)" `Slow test_sha256_million_a;
          Alcotest.test_case "streaming = one-shot" `Quick test_sha256_streaming_matches_oneshot;
          Alcotest.test_case "digest_list" `Quick test_sha256_digest_list;
          QCheck_alcotest.to_alcotest qcheck_sha256_deterministic;
          QCheck_alcotest.to_alcotest qcheck_sha256_boundary_lengths;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "constant-time equal" `Quick test_hmac_equal;
        ] );
      ( "drbg",
        [
          Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "label separation" `Quick test_drbg_label_separation;
          Alcotest.test_case "indexed expand" `Quick test_drbg_expand_indexed;
        ] );
      ( "merkle",
        [
          Alcotest.test_case "empty and single" `Quick test_merkle_empty_and_single;
          Alcotest.test_case "proofs at many sizes" `Quick test_merkle_proofs_all_sizes;
          Alcotest.test_case "wrong leaf rejected" `Quick test_merkle_rejects_wrong_leaf;
          Alcotest.test_case "wrong root rejected" `Quick test_merkle_rejects_wrong_root;
          Alcotest.test_case "order sensitivity" `Quick test_merkle_order_sensitivity;
          Alcotest.test_case "proof codec roundtrip" `Quick test_merkle_proof_codec_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_merkle_random;
        ] );
      ( "codec",
        [
          Alcotest.test_case "integers" `Quick test_codec_integers;
          Alcotest.test_case "compound" `Quick test_codec_compound;
          Alcotest.test_case "trailing rejected" `Quick test_codec_trailing_rejected;
          Alcotest.test_case "truncation rejected" `Quick test_codec_truncation_rejected;
          QCheck_alcotest.to_alcotest qcheck_codec_float;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "deterministic printing" `Quick test_json_deterministic;
          Alcotest.test_case "malformed rejected" `Quick test_json_rejects_malformed;
          QCheck_alcotest.to_alcotest qcheck_json_float;
        ] );
      ( "lamport",
        [
          Alcotest.test_case "sign/verify" `Quick test_lamport_sign_verify;
          Alcotest.test_case "wrong key" `Quick test_lamport_wrong_key;
          Alcotest.test_case "signature size" `Quick test_lamport_size;
        ] );
      ( "wots",
        [
          Alcotest.test_case "sign/verify" `Quick test_wots_sign_verify;
          Alcotest.test_case "tag separation" `Quick test_wots_tag_separation;
          Alcotest.test_case "tampered signature" `Quick test_wots_tampered_signature;
          Alcotest.test_case "codec roundtrip" `Quick test_wots_codec_roundtrip;
        ] );
      ( "mss",
        [
          Alcotest.test_case "many messages" `Quick test_mss_many_messages;
          Alcotest.test_case "exhaustion" `Quick test_mss_exhaustion;
          Alcotest.test_case "cross-key rejection" `Quick test_mss_cross_key_rejection;
          Alcotest.test_case "codec roundtrip" `Quick test_mss_codec_roundtrip;
        ] );
      ( "keys",
        [
          Alcotest.test_case "deterministic" `Quick test_keys_deterministic;
          Alcotest.test_case "sign/verify" `Quick test_keys_sign_verify;
          Alcotest.test_case "address length" `Quick test_keys_address_len;
        ] );
      ( "multisig",
        [
          Alcotest.test_case "verify" `Quick test_multisig_verify;
          Alcotest.test_case "signer set mismatch" `Quick test_multisig_signer_set_mismatch;
          Alcotest.test_case "missing signer" `Quick test_multisig_missing_signer;
          Alcotest.test_case "order insensitive" `Quick test_multisig_order_insensitive;
          Alcotest.test_case "ids distinct" `Quick test_multisig_id_distinct;
          Alcotest.test_case "codec roundtrip" `Quick test_multisig_codec_roundtrip;
          Alcotest.test_case "extend" `Quick test_multisig_extend;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "digest2 composes" `Quick test_sha256_digest2;
          Alcotest.test_case "merkle proof out of range" `Quick test_merkle_proof_out_of_range;
          Alcotest.test_case "merkle proof lengths" `Quick test_merkle_proof_lengths;
          QCheck_alcotest.to_alcotest qcheck_merkle_cross_index_rejection;
          Alcotest.test_case "distinct labels distinct keys" `Quick
            test_keys_distinct_labels_distinct_keys;
          Alcotest.test_case "signatures not transferable" `Quick
            test_keys_signature_not_transferable;
          Alcotest.test_case "remaining decreases" `Quick test_keys_remaining_decreases;
        ] );
    ]
