(* ac3_obs tests: registry semantics (dedup, kind conflicts, disabled
   mode), histogram edge policy (closed top bucket, counted
   under/overflow and NaNs), merge determinism under --jobs (per-task
   registries folded in task-index order must be byte-identical to the
   sequential registry), span nesting and trace-derived phases, and the
   instrumentation no-perturbation contract: a chaos sweep's summary is
   identical with instrumentation on and off, and its metrics JSON is
   identical for every jobs value. *)

module Metrics = Ac3_obs.Metrics
module Span = Ac3_obs.Span
module Obs = Ac3_obs.Obs
module Json = Ac3_crypto.Codec.Json
module Pool = Ac3_par.Pool
module Runner = Ac3_chaos.Runner
module Trace = Ac3_sim.Trace

(* --- registry basics --------------------------------------------------- *)

let test_counter_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "a.b.c" in
  Metrics.incr c;
  Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Metrics.counter_value c);
  (* same (name, labels) -> same instrument, label order irrelevant *)
  let c1 = Metrics.counter m ~labels:[ ("x", "1"); ("y", "2") ] "lbl" in
  let c2 = Metrics.counter m ~labels:[ ("y", "2"); ("x", "1") ] "lbl" in
  Metrics.incr c1;
  Alcotest.(check int) "label order irrelevant" 1 (Metrics.counter_value c2);
  (* distinct labels -> distinct instrument *)
  let c3 = Metrics.counter m ~labels:[ ("x", "9") ] "lbl" in
  Alcotest.(check int) "distinct labels distinct" 0 (Metrics.counter_value c3);
  Alcotest.(check int) "size counts instruments" 3 (Metrics.size m);
  match Metrics.add c (-1) with
  | () -> Alcotest.fail "negative add should raise"
  | exception Invalid_argument _ -> ()

let test_gauge_basics () =
  let m = Metrics.create () in
  let g = Metrics.gauge m "g" in
  Alcotest.(check (option (float 0.0))) "unset" None (Metrics.gauge_value g);
  Metrics.set g 2.5;
  Metrics.set g 3.5;
  Alcotest.(check (option (float 0.0))) "last write" (Some 3.5) (Metrics.gauge_value g)

let test_kind_conflict () =
  let m = Metrics.create () in
  ignore (Metrics.counter m "x");
  (match Metrics.gauge m "x" with
  | _ -> Alcotest.fail "kind conflict should raise"
  | exception Invalid_argument _ -> ());
  match Metrics.histogram m ~lo:0.0 ~hi:1.0 ~buckets:2 "x" with
  | _ -> Alcotest.fail "kind conflict should raise"
  | exception Invalid_argument _ -> ()

(* The Stats.histogram bug this layer was born from: x = hi must land in
   the last bucket, and out-of-range samples must be counted, not
   silently dropped. *)
let test_histogram_edges () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~lo:0.0 ~hi:10.0 ~buckets:10 "h" in
  List.iter (Metrics.observe h) [ 0.0; 5.0; 10.0; -1.0; 11.0; Float.nan ];
  let s = Metrics.hist_snapshot h in
  Alcotest.(check int) "x = lo in first bucket" 1 s.Metrics.counts.(0);
  Alcotest.(check int) "x = hi in last (closed) bucket" 1 s.Metrics.counts.(9);
  Alcotest.(check int) "underflow counted" 1 s.Metrics.underflow;
  Alcotest.(check int) "overflow counted" 1 s.Metrics.overflow;
  Alcotest.(check int) "NaN counted" 1 s.Metrics.nans;
  Alcotest.(check int) "in-range count" 3 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum of in-range" 15.0 s.Metrics.sum;
  (* layout mismatch on re-registration *)
  match Metrics.histogram m ~lo:0.0 ~hi:10.0 ~buckets:5 "h" with
  | _ -> Alcotest.fail "layout mismatch should raise"
  | exception Invalid_argument _ -> ()

let test_disabled_registry () =
  let m = Metrics.create ~enabled:false () in
  Alcotest.(check bool) "disabled" false (Metrics.is_enabled m);
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.add c 5;
  Alcotest.(check int) "counter inert" 0 (Metrics.counter_value c);
  let g = Metrics.gauge m "g" in
  Metrics.set g 1.0;
  Alcotest.(check (option (float 0.0))) "gauge inert" None (Metrics.gauge_value g);
  let h = Metrics.histogram m ~lo:0.0 ~hi:1.0 ~buckets:2 "h" in
  Metrics.observe h 0.5;
  Alcotest.(check int) "histogram inert" 0 (Metrics.hist_snapshot h).Metrics.count

(* --- JSON stability ---------------------------------------------------- *)

(* Two registries with the same contents recorded in different orders
   must render byte-identical JSON: sorted (name, labels) keys, fixed
   field order. *)
let test_json_stable_order () =
  let fill order =
    let m = Metrics.create () in
    List.iter
      (fun i ->
        match i with
        | 0 -> Metrics.incr (Metrics.counter m ~labels:[ ("chain", "btc") ] "z.last")
        | 1 -> Metrics.set (Metrics.gauge m "a.first") 7.0
        | 2 -> Metrics.observe (Metrics.histogram m ~lo:0.0 ~hi:4.0 ~buckets:4 "m.mid") 2.0
        | _ -> Metrics.incr (Metrics.counter m ~labels:[ ("chain", "eth") ] "z.last"))
      order;
    Json.to_string_pretty (Metrics.to_json m)
  in
  let a = fill [ 0; 1; 2; 3 ] and b = fill [ 3; 2; 1; 0 ] in
  Alcotest.(check string) "insertion order invisible" a b;
  (* keys are sorted in the rendering *)
  let idx s sub =
    match Astring.String.find_sub ~sub s with Some i -> i | None -> Alcotest.failf "%s missing" sub
  in
  Alcotest.(check bool) "a.first before m.mid" true (idx a "a.first" < idx a "m.mid");
  Alcotest.(check bool) "m.mid before z.last" true (idx a "m.mid" < idx a "z.last{chain=btc}");
  Alcotest.(check bool) "btc label before eth" true
    (idx a "z.last{chain=btc}" < idx a "z.last{chain=eth}")

(* --- merge determinism ------------------------------------------------- *)

(* Per-task registries merged in task-index order must equal the
   sequential registry, for every jobs value — the parallel-sweep
   determinism discipline in miniature. *)
let test_merge_jobs_determinism () =
  let record m task =
    let c = Metrics.counter m ~labels:[ ("task", string_of_int (task mod 3)) ] "work.done" in
    for _ = 0 to task mod 5 do
      Metrics.incr c
    done;
    Metrics.observe
      (Metrics.histogram m ~lo:0.0 ~hi:16.0 ~buckets:8 "work.cost")
      (float_of_int (task mod 17));
    Metrics.set (Metrics.gauge m "work.config") 4.0
  in
  let tasks = List.init 24 Fun.id in
  let sequential =
    let m = Metrics.create () in
    List.iter (record m) tasks;
    Json.to_string_pretty (Metrics.to_json m)
  in
  List.iter
    (fun jobs ->
      let per_task =
        Pool.map ~jobs
          (fun task ->
            let m = Metrics.create () in
            record m task;
            m)
          tasks
      in
      let merged = Metrics.create () in
      List.iter (fun m -> Metrics.merge_into ~into:merged m) per_task;
      Alcotest.(check string)
        (Printf.sprintf "merged JSON identical at jobs %d" jobs)
        sequential
        (Json.to_string_pretty (Metrics.to_json merged)))
    [ 1; 2; 4 ]

(* --- spans ------------------------------------------------------------- *)

let test_span_nesting () =
  let now = ref 0.0 in
  let t = Span.create ~clock:(fun () -> !now) () in
  let outer = Span.enter t "outer" in
  now := 1.0;
  let inner = Span.enter t ~attrs:[ ("k", "v") ] "inner" in
  now := 3.0;
  Span.exit t inner;
  now := 5.0;
  Span.exit t outer;
  (match Span.roots t with
  | [ r ] -> Alcotest.(check string) "one root" "outer" (Span.span_name r)
  | rs -> Alcotest.failf "expected 1 root, got %d" (List.length rs));
  let json = Json.to_string (Span.to_json t) in
  Alcotest.(check bool) "inner nested under outer" true
    (Astring.String.is_infix ~affix:"\"children\":[{\"name\":\"inner\"" json);
  let root = List.hd (Span.roots t) in
  Alcotest.(check (option (float 1e-9))) "outer duration" (Some 5.0) (Span.duration root)

let test_span_of_trace () =
  let trace = Trace.create () in
  let record time label = Trace.record trace ~time label in
  record 1.0 "deploy:0";
  record 2.0 "deploy:1";
  record 4.0 "redeem:0";
  record 6.0 "redeem:1";
  let t = Span.create ~clock:(fun () -> 0.0) () in
  Span.of_trace t
    ~phases:
      [
        { Span.phase = "deploy"; opens = "deploy:"; closes = [ "deploy:" ] };
        { Span.phase = "redeem"; opens = "redeem:"; closes = [ "redeem:" ] };
        { Span.phase = "refund"; opens = "refund:"; closes = [ "refund:" ] };
      ]
    trace;
  let names = List.map Span.span_name (Span.roots t) in
  Alcotest.(check (list string)) "recognized phases only" [ "deploy"; "redeem" ] names;
  List.iter2
    (fun span expected ->
      Alcotest.(check (option (float 1e-9))) "phase duration" (Some expected) (Span.duration span))
    (Span.roots t) [ 1.0; 2.0 ]

let test_span_disabled_and_import () =
  let off = Span.create ~enabled:false ~clock:(fun () -> 0.0) () in
  Span.with_span off "ignored" (fun () -> ());
  Alcotest.(check int) "disabled records nothing" 0 (List.length (Span.roots off));
  let a = Span.create ~clock:(fun () -> 1.0) () in
  Span.with_span a "ran" (fun () -> ());
  let into = Span.create ~clock:(fun () -> 0.0) () in
  Span.import ~into a;
  Span.import ~into a;
  Alcotest.(check (list string))
    "import appends roots in order" [ "ran"; "ran" ]
    (List.map Span.span_name (Span.roots into))

(* --- no-perturbation and jobs-identity of the instrumented sweep ------- *)

let sweep_metrics_json ~jobs ~instrument =
  let summary = Runner.sweep ~jobs ~instrument ~seed:5 ~runs:2 () in
  ( Fmt.str "%a" Runner.pp_summary summary,
    Json.to_string_pretty (Metrics.to_json summary.Runner.obs.Obs.metrics) )

let test_sweep_instrument_no_perturbation () =
  let on_summary, on_json = sweep_metrics_json ~jobs:1 ~instrument:true in
  let off_summary, off_json = sweep_metrics_json ~jobs:1 ~instrument:false in
  Alcotest.(check string) "summary identical with instrumentation off" on_summary off_summary;
  Alcotest.(check bool) "instrumented registry is non-trivial" true
    (String.length on_json > String.length off_json)

let test_sweep_metrics_jobs_identical () =
  let expected = sweep_metrics_json ~jobs:1 ~instrument:true in
  List.iter
    (fun jobs ->
      Alcotest.(check (pair string string))
        (Printf.sprintf "summary and metrics JSON identical at jobs %d" jobs)
        expected
        (sweep_metrics_json ~jobs ~instrument:true))
    [ 2; 4 ]

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics and dedup" `Quick test_counter_basics;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "kind conflicts rejected" `Quick test_kind_conflict;
          Alcotest.test_case "histogram edge policy" `Quick test_histogram_edges;
          Alcotest.test_case "disabled registry is inert" `Quick test_disabled_registry;
          Alcotest.test_case "JSON key order stable" `Quick test_json_stable_order;
          Alcotest.test_case "merge determinism across jobs" `Quick test_merge_jobs_determinism;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and durations" `Quick test_span_nesting;
          Alcotest.test_case "phases derived from trace" `Quick test_span_of_trace;
          Alcotest.test_case "disabled and import" `Quick test_span_disabled_and_import;
        ] );
      ( "integration",
        [
          Alcotest.test_case "instrumentation never perturbs the sweep" `Slow
            test_sweep_instrument_no_perturbation;
          Alcotest.test_case "sweep metrics identical across jobs" `Slow
            test_sweep_metrics_jobs_identical;
        ] );
    ]
