(* Slow reference implementations for the differential test harness
   (test_fast.ml).

   [Engine] is the boxed-heap event queue the simulator shipped with
   before the index-sorted arena (lib/fast/arena.ml) replaced it,
   kept compiled under test verbatim so the optimized engine always
   has a live semantic baseline: same (time, seq) dispatch order, same
   flag-only cancellation, same clock-advance rules. The hash and
   ledger hot paths need no separate copy — their reference mode is
   the same code with every memo table passed through
   ([Ac3_fast.Memo.set_enabled false]), which the harness toggles. *)

module Heap = Ac3_sim.Heap

module Engine = struct
  type event = { time : float; seq : int; callback : unit -> unit; mutable cancelled : bool }

  type handle = event

  type t = {
    mutable now : float;
    mutable next_seq : int;
    queue : event Heap.t;
    mutable executed : int;
  }

  let compare_event a b =
    let c = Float.compare a.time b.time in
    if c <> 0 then c else Int.compare a.seq b.seq

  let create () = { now = 0.0; next_seq = 0; queue = Heap.create compare_event; executed = 0 }

  let now t = t.now

  let executed_events t = t.executed

  let pending_events t =
    let live = ref 0 in
    Heap.iter t.queue (fun ev -> if not ev.cancelled then incr live);
    !live

  let schedule_at t ~time callback =
    if time < t.now then
      invalid_arg
        (Printf.sprintf "Engine.schedule_at: time %.6f is in the past (now %.6f)" time t.now);
    let ev = { time; seq = t.next_seq; callback; cancelled = false } in
    t.next_seq <- t.next_seq + 1;
    Heap.push t.queue ev;
    ev

  let schedule t ~delay callback =
    if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
    schedule_at t ~time:(t.now +. delay) callback

  let cancel handle = handle.cancelled <- true

  let is_cancelled handle = handle.cancelled

  let run ?(until = infinity) ?stop t =
    let should_stop () = match stop with None -> false | Some f -> f () in
    let count = ref 0 in
    let rec loop () =
      if should_stop () then ()
      else
        match Heap.peek t.queue with
        | None -> ()
        | Some ev when ev.time > until -> ()
        | Some _ -> (
            match Heap.pop t.queue with
            | None -> ()
            | Some ev ->
                if not ev.cancelled then begin
                  t.now <- ev.time;
                  incr count;
                  t.executed <- t.executed + 1;
                  ev.callback ()
                end;
                loop ())
    in
    loop ();
    if (not (should_stop ())) && until < infinity && t.now < until then t.now <- until;
    !count

  let run_until t horizon = ignore (run ~until:horizon t)
end
