(* ac3_par tests: pool semantics (ordering, exceptions, nesting), seed
   splitting, domain-safety of the key cache, and the determinism
   contract — parallel sweeps, model checks, replays and shrinks must be
   byte-identical to their sequential runs for every --jobs value.

   Simulation-backed cases are seeded, so any failure reproduces with
   the printed seed; jobs values deliberately include 3 (not a divisor
   of most task counts) and 8 (more workers than this container has
   cores). *)

module Pool = Ac3_par.Pool
module Keys = Ac3_crypto.Keys
module Json = Ac3_crypto.Codec.Json
module Plan = Ac3_chaos.Plan
module Oracle = Ac3_chaos.Oracle
module Runner = Ac3_chaos.Runner
module Shrink = Ac3_chaos.Shrink
module Repro = Ac3_chaos.Repro
module MC = Ac3_model.Checker
module S = Ac3_core.Scenarios

let jobs_values = [ 1; 2; 3; 8 ]

(* --- pool basics ------------------------------------------------------- *)

let test_empty_and_single () =
  List.iter
    (fun jobs ->
      Alcotest.(check (list int)) "empty task list" [] (Pool.run ~jobs []);
      Alcotest.(check (list int)) "single task" [ 42 ] (Pool.run ~jobs [ (fun () -> 42) ]))
    jobs_values

(* Skewed task durations: early tasks are the slowest, so with several
   workers the later tasks finish first — results must still come back
   in task order. *)
let test_order_preserved () =
  let n = 40 in
  let tasks =
    List.init n (fun i () ->
        let spin = (n - i) * 10_000 in
        let acc = ref 0 in
        for k = 1 to spin do
          acc := (!acc + k) land 0xFFFF
        done;
        ignore !acc;
        i)
  in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "order preserved at jobs %d" jobs)
        (List.init n Fun.id) (Pool.run ~jobs tasks))
    jobs_values

let test_map_mapi () =
  let xs = List.init 25 (fun i -> i * 3) in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int)) "map = List.map" (List.map succ xs) (Pool.map ~jobs succ xs);
      Alcotest.(check (list int))
        "mapi = List.mapi"
        (List.mapi (fun i x -> i + x) xs)
        (Pool.mapi ~jobs (fun i x -> i + x) xs))
    jobs_values

exception Boom of int

(* All tasks run to completion; the lowest-indexed failure is the one
   re-raised, regardless of which worker hit its exception first. *)
let test_exception_policy () =
  List.iter
    (fun jobs ->
      let ran = Array.make 6 false in
      let tasks =
        List.init 6 (fun i () ->
            ran.(i) <- true;
            if i = 2 || i = 4 then raise (Boom i);
            i)
      in
      (match Pool.run ~jobs tasks with
      | _ -> Alcotest.failf "jobs %d: expected Boom" jobs
      | exception Boom i ->
          Alcotest.(check int) (Printf.sprintf "lowest failing index at jobs %d" jobs) 2 i);
      Alcotest.(check bool)
        (Printf.sprintf "all tasks still ran at jobs %d" jobs)
        true
        (Array.for_all Fun.id ran))
    jobs_values

let test_nested_rejected () =
  match Pool.run ~jobs:2 [ (fun () -> Pool.run ~jobs:2 [ (fun () -> 0) ]) ] with
  | _ -> Alcotest.fail "nested Pool.run should raise"
  | exception Pool.Nested -> ()

(* After a rejected nested call (and after an exception), the pool must
   be reusable — the DLS flag is restored. *)
let test_pool_reusable () =
  (try ignore (Pool.run [ (fun () -> raise Exit) ]) with Exit -> ());
  Alcotest.(check (list int)) "usable after exception" [ 7 ] (Pool.run [ (fun () -> 7) ])

let test_first_success () =
  let find_map_spec f xs = List.find_map (fun x -> f x) xs in
  List.iter
    (fun jobs ->
      (* no winner *)
      Alcotest.(check (option int))
        "all None" None
        (Pool.first_success ~jobs (List.init 10 (fun _ () -> None)));
      Alcotest.(check (option int)) "empty" None (Pool.first_success ~jobs []);
      (* first Some by index wins even when a later, cheaper Some exists *)
      let mk i () = if i = 3 || i = 7 then Some i else None in
      let thunks = List.init 10 mk in
      Alcotest.(check (option int))
        (Printf.sprintf "first by index at jobs %d" jobs)
        (find_map_spec (fun f -> f ()) thunks)
        (Pool.first_success ~jobs thunks))
    jobs_values

(* --- seed splitting ---------------------------------------------------- *)

let test_split_seed () =
  (* deterministic *)
  Alcotest.(check int) "stable" (Pool.split_seed ~root:1 ~index:0) (Pool.split_seed ~root:1 ~index:0);
  (* non-negative (usable directly as an Rng seed) and pairwise distinct
     over a root x index grid *)
  let seen = Hashtbl.create 1024 in
  for root = 0 to 15 do
    for index = 0 to 63 do
      let s = Pool.split_seed ~root ~index in
      Alcotest.(check bool) "non-negative" true (s >= 0);
      (match Hashtbl.find_opt seen s with
      | Some (r, i) -> Alcotest.failf "collision: (%d,%d) and (%d,%d) -> %d" r i root index s
      | None -> ());
      Hashtbl.add seen s (root, index)
    done
  done;
  (match Pool.split_seed ~root:0 ~index:(-1) with
  | _ -> Alcotest.fail "negative index should be rejected"
  | exception Invalid_argument _ -> ());
  (* derived streams are actually independent: the first draws differ *)
  let first_draw index =
    Ac3_sim.Rng.bits (Ac3_sim.Rng.create (Pool.split_seed ~root:9 ~index))
  in
  Alcotest.(check bool) "streams differ" true (first_draw 0 <> first_draw 1)

(* --- key cache under concurrent domains -------------------------------- *)

(* Two domains hammer Keys.create on overlapping labels: same label must
   yield one shared identity (equal addresses), distinct labels distinct
   identities, and nothing crashes. This is the regression test for the
   cache mutex — before it, two domains racing on a cold label could
   each generate a different secret. *)
let test_keys_concurrent_create () =
  let label k = Printf.sprintf "par-keys-%d" k in
  let worker () = Array.init 24 (fun k -> Keys.address (Keys.create ~height:4 (label k))) in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  let a1 = Domain.join d1 and a2 = Domain.join d2 in
  Alcotest.(check bool) "same label, same identity in both domains" true (a1 = a2);
  let distinct = Hashtbl.create 32 in
  Array.iter (fun a -> Hashtbl.replace distinct a ()) a1;
  Alcotest.(check int) "distinct labels, distinct identities" 24 (Hashtbl.length distinct);
  Array.iteri
    (fun k a ->
      Alcotest.(check string)
        (Printf.sprintf "cache agrees with domains for %s" (label k))
        a
        (Keys.address (Keys.create ~height:4 (label k))))
    a1

(* --- interference sanitizer -------------------------------------------- *)

(* Isolated tasks: each rebuilds its identity from its own label with a
   full signature budget ([Keys.fresh]), the discipline every sweep in
   this repo follows. Reruns reproduce the same result, so the
   sanitizer stays silent at every jobs value. *)
let test_sanitize_clean () =
  List.iter
    (fun jobs ->
      let results =
        Pool.run ~jobs ~sanitize:true
          (List.init 12 (fun i () ->
               let id = Keys.fresh ~height:4 (Printf.sprintf "sanitize-clean-%d" i) in
               ignore (Keys.sign id "msg");
               (Keys.address id, Keys.remaining_signatures id)))
      in
      Alcotest.(check int) "all results collected" 12 (List.length results);
      List.iter
        (fun (_, remaining) -> Alcotest.(check int) "full budget minus one" 15 remaining)
        results)
    jobs_values

(* The resurrected PR-4 bug: with the unlocked memo path, tasks sharing
   one label can be handed distinct secrets with independent signature
   counters — and even when the race window is missed, they share ONE
   memoized mutable counter across tasks. Either way a task's
   remaining-signature count depends on what other executions did, so
   the sequential rerun is strictly below every parallel observation
   and the sanitizer must flag it with a task index. *)
let test_sanitize_catches_keys_race () =
  Keys.test_only_unlocked_cache := true;
  Fun.protect
    ~finally:(fun () -> Keys.test_only_unlocked_cache := false)
    (fun () ->
      let tasks =
        List.init 8 (fun _ () ->
            let id = Keys.create ~height:5 "sanitize-race" in
            ignore (Keys.sign id "interference");
            Keys.remaining_signatures id)
      in
      match Pool.run ~jobs:4 ~sanitize:true tasks with
      | _ -> Alcotest.fail "sanitizer missed the shared signature counter"
      | exception Pool.Interference { index; first; rerun } ->
          Alcotest.(check bool) "offending index in range" true (index >= 0 && index < 8);
          Alcotest.(check bool) "fingerprints differ" true (first <> rerun))

(* Without ~sanitize the same interfering batch goes unnoticed — the
   check is opt-in, not ambient. *)
let test_sanitize_opt_in () =
  Keys.test_only_unlocked_cache := true;
  Fun.protect
    ~finally:(fun () -> Keys.test_only_unlocked_cache := false)
    (fun () ->
      let results =
        Pool.run ~jobs:4
          (List.init 4 (fun _ () ->
               let id = Keys.create ~height:5 "sanitize-race-quiet" in
               ignore (Keys.sign id "interference");
               Keys.remaining_signatures id))
      in
      Alcotest.(check int) "completes without sanitize" 4 (List.length results))

(* A sanitized sweep passes: chaos runs rebuild universe and identities
   from the run seed alone, so they are idempotent by construction. *)
let test_sanitize_sweep_clean () =
  let s = Runner.sweep ~jobs:3 ~sanitize:true ~seed:11 ~runs:2 () in
  Alcotest.(check int) "sweep completes under sanitize" 2 s.Runner.sweep_runs

(* --- chaos sweep: parallel == sequential ------------------------------- *)

let verdict_string (r : Runner.report) =
  match r.Runner.exec with
  | Runner.Verdict v -> Fmt.str "%a" Oracle.pp v
  | Runner.Rejected m -> "rejected: " ^ m
  | Runner.Skipped m -> "skipped: " ^ m

(* A sweep's observable output at one jobs value: the pretty summary
   plus, via on_report, every report serialized through the existing
   codecs (plan JSON + verdict text) in callback order. *)
let sweep_observation ~jobs ~seed ~runs =
  let lines = ref [] in
  let on_report (r : Runner.report) =
    lines :=
      Printf.sprintf "%s %s %s"
        (Runner.protocol_name r.Runner.protocol)
        (Plan.to_string r.Runner.plan)
        (verdict_string r)
      :: !lines
  in
  let summary = Runner.sweep ~on_report ~jobs ~seed ~runs () in
  (Fmt.str "%a" Runner.pp_summary summary, List.rev !lines)

let qcheck_sweep_jobs_equivalent =
  QCheck.Test.make ~name:"chaos sweep is byte-identical for every --jobs" ~count:2
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1000))
    (fun seed ->
      let runs = 2 in
      let expected = sweep_observation ~jobs:1 ~seed ~runs in
      List.for_all (fun jobs -> sweep_observation ~jobs ~seed ~runs = expected) [ 2; 3; 8 ])

(* --- model checker: parallel == sequential ----------------------------- *)

let check_cases () =
  let graph_of n shape =
    let ids = S.identities ~ns:"par-test" n in
    let chains = List.init n (Printf.sprintf "c%d") in
    match shape with
    | `Two_party -> S.two_party_graph ~chain1:"c0" ~chain2:"c1" ids ~timestamp:1.0
    | `Ring -> S.ring_graph ~chains ids ~timestamp:1.0
    | `Cyclic -> S.cyclic_graph ~chains ids ~timestamp:1.0
  in
  [
    (MC.Herlihy, graph_of 2 `Two_party);
    (MC.Nolan, graph_of 2 `Two_party);
    (MC.Ac3wn, graph_of 3 `Ring);
    (MC.Ac3wn, graph_of 3 `Cyclic);
  ]

let report_string (r : MC.report) =
  let diags =
    String.concat "\n" (List.map (fun d -> Json.to_string (Ac3_verify.Diagnostic.to_json d)) r.MC.diagnostics)
  in
  Fmt.str "%s %d violations %a@.%s" (MC.protocol_name r.MC.protocol)
    (List.length r.MC.violations) MC.pp_stats r.MC.stats diags

let test_check_jobs_equivalent () =
  let run jobs =
    Pool.map ~jobs
      (fun (protocol, graph) ->
        report_string (MC.check ~config:MC.default_config ~protocol ~graph))
      (check_cases ())
  in
  let expected = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "diagnostics identical at jobs %d" jobs)
        expected (run jobs))
    [ 2; 3; 8 ]

(* --- corpus replays under every jobs value ----------------------------- *)

let corpus_dir () =
  if Sys.file_exists "chaos_corpus" then "chaos_corpus" else Filename.concat "test" "chaos_corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_corpus_replays_all_jobs () =
  let files =
    Sys.readdir (corpus_dir ()) |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (Filename.concat (corpus_dir ()))
  in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      let repro = Repro.of_string (read_file path) in
      let render jobs =
        Repro.replay ~jobs repro
        |> List.map (fun r -> Fmt.str "%a" Repro.pp_replay_result r)
      in
      let expected = render 1 in
      Alcotest.(check bool) (path ^ " replays ok") true (Repro.replay_ok (Repro.replay repro));
      List.iter
        (fun jobs ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s identical at jobs %d" path jobs)
            expected (render jobs))
        [ 2; 3; 8 ])
    files

(* --- shrinking: parallel == sequential --------------------------------- *)

(* Seed 92 is the known Herlihy violation used by test_chaos; the
   shrink trajectory (logged steps) and result must not depend on
   jobs, because candidate evaluation keeps first-by-index semantics. *)
let test_shrink_jobs_equivalent () =
  let spec, plan = Plan.sample ~seed:92 () in
  let run jobs =
    let steps = ref [] in
    let log line = steps := line :: !steps in
    let shrunk = Shrink.shrink ~log ~jobs ~spec ~protocol:Runner.P_herlihy plan in
    (Plan.to_string shrunk, List.rev !steps)
  in
  let expected = run 1 in
  let plan_s, _ = expected in
  Alcotest.(check bool) "shrunk to something smaller" true
    (String.length plan_s < String.length (Plan.to_string plan));
  List.iter
    (fun jobs ->
      let got = run jobs in
      Alcotest.(check (pair string (list string)))
        (Printf.sprintf "shrink trajectory identical at jobs %d" jobs)
        expected got)
    [ 4; 8 ]

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "empty and single task" `Quick test_empty_and_single;
          Alcotest.test_case "order preserved under skewed work" `Quick test_order_preserved;
          Alcotest.test_case "map and mapi" `Quick test_map_mapi;
          Alcotest.test_case "lowest-index exception re-raised" `Quick test_exception_policy;
          Alcotest.test_case "nested use rejected" `Quick test_nested_rejected;
          Alcotest.test_case "reusable after failures" `Quick test_pool_reusable;
          Alcotest.test_case "first_success = find_map" `Quick test_first_success;
        ] );
      ( "seeds",
        [ Alcotest.test_case "split_seed: stable, positive, collision-free" `Quick test_split_seed ] );
      ( "keys",
        [ Alcotest.test_case "concurrent create never collides" `Quick test_keys_concurrent_create ]
      );
      ( "sanitize",
        [
          Alcotest.test_case "isolated tasks pass at every jobs value" `Quick test_sanitize_clean;
          Alcotest.test_case "reintroduced keys race is flagged" `Quick
            test_sanitize_catches_keys_race;
          Alcotest.test_case "check is opt-in" `Quick test_sanitize_opt_in;
          Alcotest.test_case "sanitized sweep stays clean" `Quick test_sanitize_sweep_clean;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest ~long:true qcheck_sweep_jobs_equivalent;
          Alcotest.test_case "model checks identical across jobs" `Slow test_check_jobs_equivalent;
          Alcotest.test_case "corpus replays identical across jobs" `Slow
            test_corpus_replays_all_jobs;
          Alcotest.test_case "shrink trajectory identical across jobs" `Slow
            test_shrink_jobs_equivalent;
        ] );
    ]
