(* Model-checker tests: the M-rules on known-good and known-bad
   (protocol, graph) pairs, agreement with the committed chaos corpus,
   and the static-counterexample-to-dynamic-violation bridge.

   The headline properties from the paper: Herlihy's protocol is not
   fault-tolerant (one withholding party yields a mixed settlement,
   M001, where the victim's executed history is conforming, M003),
   while AC3WN's witness decision makes the same universes atomic under
   the same fault budget. *)

module Checker = Ac3_model.Checker
module Semantics = Ac3_model.Semantics
module Explore = Ac3_model.Explore
module Diagnostic = Ac3_verify.Diagnostic
module Scenarios = Ac3_core.Scenarios
module Plan = Ac3_chaos.Plan
module Runner = Ac3_chaos.Runner
module Repro = Ac3_chaos.Repro
module Model_repro = Ac3_chaos.Model_repro

let error_rules report =
  List.map (fun d -> d.Diagnostic.rule) (Diagnostic.errors report.Checker.diagnostics)

let has_error rule report = List.mem rule (error_rules report)

let config ?(crash_budget = 1) () = { Checker.default_config with crash_budget }

let two_party () =
  Scenarios.two_party_graph ~chain1:"c0" ~chain2:"c1"
    (Scenarios.identities ~ns:"model-test" 2)
    ~timestamp:1.0

let ring n =
  let chains = List.init n (Printf.sprintf "c%d") in
  Scenarios.ring_graph ~chains (Scenarios.identities ~ns:"model-test" n) ~timestamp:1.0

let supply_chain () =
  Scenarios.supply_chain_graph ~chains:[ "c0"; "c1"; "c2" ]
    (Scenarios.identities ~ns:"model-test" 4)
    ~timestamp:1.0

(* --- Herlihy under one crash: the Sec 3 violation ---------------------- *)

let test_herlihy_two_party_crash () =
  let r = Checker.check ~config:(config ()) ~protocol:Checker.Herlihy ~graph:(two_party ()) in
  Alcotest.(check bool) "M001 found" true (has_error "M001-mixed-settlement" r);
  Alcotest.(check bool) "M003 found" true (has_error "M003-deviation-unsafe" r);
  Alcotest.(check bool) "not truncated" false r.Checker.stats.Checker.truncated;
  let v = List.hd r.Checker.violations in
  Alcotest.(check bool) "schedule non-empty" true (v.Ac3_model.Rules.schedule <> []);
  Alcotest.(check bool) "schedule contains a crash" true
    (List.exists
       (function Semantics.Crash _ -> true | _ -> false)
       v.Ac3_model.Rules.schedule)

(* --- Herlihy fault-free: clean --------------------------------------- *)

let test_herlihy_fault_free_clean () =
  List.iter
    (fun graph ->
      let r =
        Checker.check ~config:(config ~crash_budget:0 ()) ~protocol:Checker.Herlihy ~graph
      in
      Alcotest.(check (list string)) "no errors" [] (error_rules r))
    [ two_party (); ring 3 ]

(* --- AC3WN: atomic under the same budget ------------------------------ *)

let test_ac3wn_clean_under_crash () =
  List.iter
    (fun (name, graph) ->
      let r = Checker.check ~config:(config ()) ~protocol:Checker.Ac3wn ~graph in
      Alcotest.(check (list string)) (name ^ " has no errors") [] (error_rules r))
    [
      ("two-party", two_party ());
      ("ring4", ring 4);
      ("supply-chain", supply_chain ());
    ]

(* --- Fault-free Herlihy on the supply chain: the T001 graph ----------- *)

(* The supply-chain graph pays the carrier on a chain whose timelock
   expires before the carrier can learn the secret; the T-rules flag it
   statically (T001) and the model checker must reach the same verdict
   by pure exploration: a mixed settlement with no faults at all. *)
let test_herlihy_supply_chain_violates_fault_free () =
  let r =
    Checker.check
      ~config:(config ~crash_budget:0 ())
      ~protocol:Checker.Herlihy ~graph:(supply_chain ())
  in
  Alcotest.(check bool) "M001 found with zero faults" true (has_error "M001-mixed-settlement" r)

(* --- Nolan: two-party only -------------------------------------------- *)

let test_nolan_shape_gate () =
  let r = Checker.check ~config:(config ()) ~protocol:Checker.Nolan ~graph:(ring 3) in
  Alcotest.(check bool) "ring rejected" true (has_error "T000-not-executable" r);
  let r2 = Checker.check ~config:(config ()) ~protocol:Checker.Nolan ~graph:(two_party ()) in
  Alcotest.(check bool) "two-party modeled" true (r2.Checker.model <> None);
  Alcotest.(check bool) "M001 found" true (has_error "M001-mixed-settlement" r2)

(* --- Determinism and POR ---------------------------------------------- *)

let test_deterministic_and_por () =
  let run () = Checker.check ~config:(config ()) ~protocol:Checker.Herlihy ~graph:(ring 4) in
  let r1 = run () and r2 = run () in
  Alcotest.(check bool) "same stats" true (r1.Checker.stats = r2.Checker.stats);
  Alcotest.(check (list string)) "same rules" (error_rules r1) (error_rules r2);
  (* Herlihy's rounds serialize almost everything; the reduction earns
     its keep on AC3WN, whose deploys and redeems are parallel. *)
  let rw = Checker.check ~config:(config ()) ~protocol:Checker.Ac3wn ~graph:(ring 4) in
  Alcotest.(check bool) "POR pruned something on ac3wn" true
    (rw.Checker.stats.Checker.por_skipped > 0)

let test_truncation_reported () =
  let config = { (config ()) with Checker.max_nodes = 10 } in
  let r = Checker.check ~config ~protocol:Checker.Herlihy ~graph:(ring 4) in
  Alcotest.(check bool) "truncated" true r.Checker.stats.Checker.truncated;
  Alcotest.(check bool) "M005 warning" true
    (List.exists (fun d -> d.Diagnostic.rule = "M005-truncated") r.Checker.diagnostics)

(* --- Agreement with the committed chaos corpus ------------------------- *)

(* Each committed reproducer states dynamic verdicts per protocol; the
   checker, run on the same graph with a budget matching the plan, must
   predict them: expected deposit_lost implies an M001 finding, expected
   pass implies a clean report. *)
let corpus_dir () =
  if Sys.file_exists "chaos_corpus" then "chaos_corpus" else Filename.concat "test" "chaos_corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let checker_protocol = function
  | Runner.P_nolan -> Checker.Nolan
  | Runner.P_herlihy -> Checker.Herlihy
  | Runner.P_ac3wn -> Checker.Ac3wn

let test_corpus_predicted () =
  let files = Sys.readdir (corpus_dir ()) in
  Array.sort compare files;
  let checked = ref 0 in
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".json" then begin
        let repro = Repro.of_string (read_file (Filename.concat (corpus_dir ()) file)) in
        let crashes =
          List.exists (function Plan.Crash _ -> true | _ -> false) repro.Repro.plan
        in
        let ids =
          Scenarios.identities
            ~ns:(Printf.sprintf "model-corpus-%d" repro.Repro.spec.Plan.seed)
            repro.Repro.spec.Plan.parties
        in
        let graph = Runner.build_graph ~spec:repro.Repro.spec ~ids ~timestamp:1.0 in
        List.iter
          (fun (e : Repro.expectation) ->
            (* Only crash faults are in the model's move alphabet; a
               partition/delay-driven verdict is out of scope here. *)
            let in_scope = repro.Repro.plan = [] || crashes in
            if in_scope then begin
              let budget = if crashes then 1 else 0 in
              let r =
                Checker.check
                  ~config:(config ~crash_budget:budget ())
                  ~protocol:(checker_protocol e.Repro.protocol) ~graph
              in
              incr checked;
              if e.Repro.deposit_lost then
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s deposit loss predicted (M001)" file
                     (Runner.protocol_name e.Repro.protocol))
                  true (has_error "M001-mixed-settlement" r)
              else if e.Repro.pass && e.Repro.committed then
                Alcotest.(check (list string))
                  (Printf.sprintf "%s: %s clean run predicted" file
                     (Runner.protocol_name e.Repro.protocol))
                  [] (error_rules r)
            end)
          repro.Repro.expect
      end)
    files;
  Alcotest.(check bool) "checked at least three expectations" true (!checked >= 3)

(* --- The bridge: counterexamples replay on the simulator --------------- *)

let test_counterexample_replays () =
  let spec =
    { Plan.seed = 2026; shape = Plan.Two_party; parties = 2; nchains = 2; extra_edges = 0; load = 1 }
  in
  let ids = Scenarios.identities ~ns:"chaos2026-herlihy" ~fresh:true 2 in
  let graph = Runner.build_graph ~spec ~ids ~timestamp:1.0 in
  let r = Checker.check ~config:(config ()) ~protocol:Checker.Herlihy ~graph in
  Alcotest.(check bool) "static violation found" true (r.Checker.violations <> []);
  let v = List.hd r.Checker.violations in
  let outcome =
    Model_repro.concretize ~spec ~protocol:Checker.Herlihy
      ~schedule:v.Ac3_model.Rules.schedule ()
  in
  Alcotest.(check bool) "dynamically confirmed" true outcome.Model_repro.confirmed;
  Alcotest.(check bool) "reproducer replays" true
    (Repro.replay_ok (Repro.replay outcome.Model_repro.repro))

(* Regression for the D001 fix in Explore.iter_succs: edges are visited
   in ascending source-node id, not hash-bucket order, so downstream
   diagnostics (M004) are stable. *)
let test_iter_succs_ascending () =
  match
    Semantics.make ~protocol:Semantics.Ac3wn ~graph:(two_party ()) ~delta:15.0 ~timelock_slack:2.0
      ~start_time:0.0 ~crash_budget:1
  with
  | Error e -> Alcotest.fail e
  | Ok model ->
      let t = Explore.run model in
      let last = ref (-1) in
      let edges = ref 0 in
      Explore.iter_succs t (fun id _mv _tgt ->
          incr edges;
          if id < !last then
            Alcotest.failf "source id %d visited after %d: not ascending" id !last;
          last := id);
      Alcotest.(check bool) "visited edges" true (!edges > 0)

let () =
  Alcotest.run "model"
    [
      ( "rules",
        [
          Alcotest.test_case "herlihy two-party: crash yields M001+M003" `Quick
            test_herlihy_two_party_crash;
          Alcotest.test_case "herlihy fault-free: clean" `Quick test_herlihy_fault_free_clean;
          Alcotest.test_case "ac3wn: clean under one crash" `Quick test_ac3wn_clean_under_crash;
          Alcotest.test_case "herlihy supply chain: fault-free M001" `Quick
            test_herlihy_supply_chain_violates_fault_free;
          Alcotest.test_case "nolan: shape gate" `Quick test_nolan_shape_gate;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "deterministic, POR active" `Quick test_deterministic_and_por;
          Alcotest.test_case "truncation reported" `Quick test_truncation_reported;
          Alcotest.test_case "iter_succs ascending" `Quick test_iter_succs_ascending;
        ] );
      ( "corpus",
        [ Alcotest.test_case "corpus verdicts predicted" `Quick test_corpus_predicted ] );
      ( "replay",
        [
          Alcotest.test_case "counterexample concretizes and replays" `Slow
            test_counterexample_replays;
        ] );
    ]
