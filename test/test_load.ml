(* Tests for the load engine: workload sampling determinism, Zipf
   popularity skew, conservation of value under many concurrent swaps,
   byte-identical sweeps across --jobs, and the atomicity invariants the
   load report classifies against. *)

module Rng = Ac3_sim.Rng
module Amount = Ac3_chain.Amount
module Metrics = Ac3_obs.Metrics
module Obs = Ac3_obs.Obs
module Json = Ac3_crypto.Codec.Json
module Workload = Ac3_load.Workload
module Zipf = Ac3_load.Zipf
module Engine = Ac3_load.Engine

(* --- Zipf ---------------------------------------------------------------- *)

let test_zipf_prob_decreasing () =
  let z = Zipf.create ~n:16 ~s:1.1 in
  let total = ref 0.0 in
  for i = 0 to 15 do
    total := !total +. Zipf.prob z i;
    if i > 0 then
      Alcotest.(check bool)
        (Printf.sprintf "prob %d < prob %d" i (i - 1))
        true
        (Zipf.prob z i < Zipf.prob z (i - 1))
  done;
  Alcotest.(check (float 1e-9)) "probs sum to 1" 1.0 !total;
  (* s = 0 degenerates to uniform. *)
  let u = Zipf.create ~n:8 ~s:0.0 in
  for i = 0 to 7 do
    Alcotest.(check (float 1e-9)) "uniform" 0.125 (Zipf.prob u i)
  done

(* Empirical frequencies follow rank: with real skew and enough draws,
   lower ranks are drawn at least as often as higher ones. Deterministic
   seed, so this is a regression test, not a flaky statistical one. *)
let test_zipf_frequency_rank_monotone () =
  let n = 8 in
  let z = Zipf.create ~n ~s:1.2 in
  let rng = Rng.create 42 in
  let counts = Array.make n 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let r = Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < n);
    counts.(r) <- counts.(r) + 1
  done;
  for i = 1 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "count rank %d >= rank %d" (i - 1) i)
      true
      (counts.(i - 1) >= counts.(i))
  done;
  Alcotest.(check int) "every draw counted" draws (Array.fold_left ( + ) 0 counts)

let qcheck_zipf_sample_deterministic =
  QCheck.Test.make ~name:"zipf sampling is a pure function of the seed" ~count:50
    QCheck.(pair (int_range 1 64) small_nat)
    (fun (n, seed) ->
      let z = Zipf.create ~n ~s:1.1 in
      let draw seed = List.init 100 (fun _ -> Zipf.sample z (Rng.create seed) |> string_of_int) in
      let one seed =
        let rng = Rng.create seed in
        List.init 100 (fun _ -> string_of_int (Zipf.sample z rng))
      in
      ignore (draw seed);
      one seed = one seed)

(* --- Workload sampling --------------------------------------------------- *)

let small_config =
  {
    Workload.default with
    Workload.swaps = 40;
    users = 10;
    chains = 3;
    zipf_exponent = 1.1;
    abandon_frac = 0.2;
  }

let qcheck_specs_deterministic =
  QCheck.Test.make ~name:"sample_specs replays byte-identically from the seed" ~count:30
    QCheck.small_nat
    (fun seed ->
      let sample () = Workload.sample_specs small_config (Rng.create seed) in
      sample () = sample ())

let qcheck_specs_well_formed =
  QCheck.Test.make ~name:"specs: distinct endpoints, indexed in launch order" ~count:30
    QCheck.small_nat
    (fun seed ->
      let specs = Workload.sample_specs small_config (Rng.create seed) in
      Array.length specs = small_config.Workload.swaps
      && Array.for_all
           (fun (s : Workload.spec) ->
             s.Workload.user_a <> s.Workload.user_b
             && s.Workload.chain_a <> s.Workload.chain_b
             && s.Workload.user_a >= 0
             && s.Workload.user_a < small_config.Workload.users
             && s.Workload.user_b >= 0
             && s.Workload.user_b < small_config.Workload.users
             && s.Workload.chain_a >= 0
             && s.Workload.chain_a < small_config.Workload.chains
             && s.Workload.chain_b >= 0
             && s.Workload.chain_b < small_config.Workload.chains)
           specs
      && Array.for_all (fun i -> specs.(i).Workload.index = i)
           (Array.init (Array.length specs) Fun.id))

(* A zero weight means the protocol is never drawn — the mix is a hard
   constraint, not a hint. *)
let qcheck_specs_respect_zero_weight =
  QCheck.Test.make ~name:"zero mix weight excludes the protocol" ~count:30 QCheck.small_nat
    (fun seed ->
      let c =
        { small_config with Workload.mix = { Workload.nolan = 0.0; herlihy = 1.0; ac3wn = 1.0 } }
      in
      let specs = Workload.sample_specs c (Rng.create seed) in
      Array.for_all (fun (s : Workload.spec) -> s.Workload.protocol <> Workload.Nolan) specs)

let qcheck_arrival_offsets_monotone =
  QCheck.Test.make ~name:"open-loop offsets are sorted and non-negative" ~count:30
    QCheck.(pair small_nat (float_range 0.1 10.0))
    (fun (seed, rate) ->
      let c = { small_config with Workload.arrival = Workload.Open_loop { rate } } in
      let offs = Workload.arrival_offsets c (Rng.create seed) in
      Array.length offs = c.Workload.swaps
      && Array.for_all (fun t -> t >= 0.0) offs
      && Array.for_all
           (fun i -> offs.(i) >= offs.(i - 1))
           (Array.init (Array.length offs - 1) (fun i -> i + 1)))

let test_closed_loop_has_no_offsets () =
  let c = { small_config with Workload.arrival = Workload.Closed_loop { clients = 4; think = 1.0 } } in
  Alcotest.(check int) "no precomputed offsets" 0
    (Array.length (Workload.arrival_offsets c (Rng.create 1)))

let test_validate_rejects_bad_configs () =
  let expect_invalid label c =
    match Workload.validate c with
    | () -> Alcotest.fail (label ^ ": accepted an invalid config")
    | exception Invalid_argument _ -> ()
  in
  let d = Workload.default in
  expect_invalid "swaps" { d with Workload.swaps = 0 };
  expect_invalid "users" { d with Workload.users = 1 };
  expect_invalid "chains" { d with Workload.chains = 1 };
  expect_invalid "rate" { d with Workload.arrival = Workload.Open_loop { rate = 0.0 } };
  expect_invalid "clients" { d with Workload.arrival = Workload.Closed_loop { clients = 0; think = 1.0 } };
  expect_invalid "mix" { d with Workload.mix = { Workload.nolan = 0.0; herlihy = 0.0; ac3wn = 0.0 } };
  expect_invalid "negative weight" { d with Workload.mix = { Workload.nolan = -1.0; herlihy = 1.0; ac3wn = 1.0 } };
  expect_invalid "abandon" { d with Workload.abandon_frac = 1.5 };
  expect_invalid "zipf" { d with Workload.zipf_exponent = -0.1 };
  expect_invalid "deadline" { d with Workload.deadline = 0.0 };
  Workload.validate d

(* --- Engine -------------------------------------------------------------- *)

(* A workload small enough for the test suite but contended enough to
   exercise shared wallets: few users, hot Zipf skew, all protocols. *)
let engine_config =
  {
    Workload.default with
    Workload.swaps = 12;
    users = 6;
    chains = 2;
    arrival = Workload.Open_loop { rate = 0.5 };
    deadline = 300.0;
  }

let metrics_fingerprint (obs : Obs.t) = Json.to_string (Metrics.to_json obs.Obs.metrics)

let test_engine_seed_replay_deterministic () =
  let run () = Engine.run ~seed:5 engine_config in
  let r1, o1 = run () in
  let r2, o2 = run () in
  Alcotest.(check string) "rendered report identical" (Engine.render r1) (Engine.render r2);
  Alcotest.(check string) "metrics identical" (metrics_fingerprint o1) (metrics_fingerprint o2);
  Alcotest.(check int) "all swaps accounted" engine_config.Workload.swaps
    (r1.Engine.committed + r1.Engine.aborted + r1.Engine.timed_out + r1.Engine.non_atomic
    + r1.Engine.rejected + r1.Engine.in_flight);
  Alcotest.(check bool) "some swaps commit" true (r1.Engine.committed > 0)

let test_engine_conserves_value () =
  let _, u = Engine.run_universe ~seed:5 engine_config in
  let checks = Engine.supply_check u in
  Alcotest.(check bool) "checked every chain" true (List.length checks >= 3);
  List.iter
    (fun (chain, expected, actual) ->
      Alcotest.(check bool)
        (Printf.sprintf "supply conserved on %s" chain)
        true
        (Amount.equal expected actual))
    checks

(* AC3WN's witness decides commit/abort for all edges at once, so a
   mixed settlement — the classifier's Non_atomic — can only ever come
   from the timelock protocols. This is the paper's claim, surfaced as
   a load-report invariant. *)
let test_engine_non_atomic_never_ac3wn () =
  let check_report (r : Engine.report) =
    List.iter
      (fun (res : Engine.swap_result) ->
        if res.Engine.cls = Engine.Non_atomic then
          Alcotest.(check bool) "violation is a timelock protocol" true
            (res.Engine.spec.Workload.protocol <> Workload.Ac3wn))
      r.Engine.results
  in
  (* Seeds chosen to include at least one that produces a violation
     under contention, so the invariant is actually exercised. *)
  let summary = Engine.sweep ~jobs:1 ~seed:5 ~runs:2 engine_config in
  List.iter check_report summary.Engine.reports

let test_engine_sweep_jobs_byte_identical () =
  let sweep jobs = Engine.sweep ~jobs ~sanitize:(jobs = 4) ~seed:9 ~runs:2 engine_config in
  let s1 = sweep 1 in
  let s2 = sweep 2 in
  let s4 = sweep 4 in
  let render = Engine.render_sweep in
  Alcotest.(check string) "render jobs 2 = jobs 1" (render s1) (render s2);
  Alcotest.(check string) "render jobs 4 = jobs 1" (render s1) (render s4);
  Alcotest.(check string) "metrics jobs 2 = jobs 1" (metrics_fingerprint s1.Engine.obs)
    (metrics_fingerprint s2.Engine.obs);
  Alcotest.(check string) "metrics jobs 4 = jobs 1" (metrics_fingerprint s1.Engine.obs)
    (metrics_fingerprint s4.Engine.obs)

let () =
  Alcotest.run "load"
    [
      ( "zipf",
        [
          Alcotest.test_case "prob decreasing, sums to 1" `Quick test_zipf_prob_decreasing;
          Alcotest.test_case "frequency follows rank" `Quick test_zipf_frequency_rank_monotone;
          QCheck_alcotest.to_alcotest qcheck_zipf_sample_deterministic;
        ] );
      ( "workload",
        [
          QCheck_alcotest.to_alcotest qcheck_specs_deterministic;
          QCheck_alcotest.to_alcotest qcheck_specs_well_formed;
          QCheck_alcotest.to_alcotest qcheck_specs_respect_zero_weight;
          QCheck_alcotest.to_alcotest qcheck_arrival_offsets_monotone;
          Alcotest.test_case "closed loop has no offsets" `Quick test_closed_loop_has_no_offsets;
          Alcotest.test_case "validate rejects bad configs" `Quick test_validate_rejects_bad_configs;
        ] );
      ( "engine",
        [
          Alcotest.test_case "seed replay is deterministic" `Slow
            test_engine_seed_replay_deterministic;
          Alcotest.test_case "value is conserved" `Slow test_engine_conserves_value;
          Alcotest.test_case "non-atomic never ac3wn" `Slow test_engine_non_atomic_never_ac3wn;
          Alcotest.test_case "sweep byte-identical across jobs" `Slow
            test_engine_sweep_jobs_byte_identical;
        ] );
    ]
