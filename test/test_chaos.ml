(* Chaos harness tests: plan determinism and serialization, the
   replay-equals-original property, the committed reproducer corpus, and
   a bounded smoke sweep over randomized universes.

   Everything here is seeded: a failure always reproduces with
   `ac3 chaos --seed <n> --runs 1`. The longer 200-run sweep lives
   behind `dune build @chaos` and is excluded from the default test
   alias. *)

module Plan = Ac3_chaos.Plan
module Oracle = Ac3_chaos.Oracle
module Runner = Ac3_chaos.Runner
module Shrink = Ac3_chaos.Shrink
module Repro = Ac3_chaos.Repro
module Json = Ac3_crypto.Codec.Json
module Trace = Ac3_sim.Trace

let trace_string t = Fmt.str "%a" Trace.pp t

let verdict_string (r : Runner.report) =
  match r.exec with
  | Runner.Verdict v -> Fmt.str "%a" Oracle.pp v
  | Runner.Rejected m -> "rejected: " ^ m
  | Runner.Skipped m -> "skipped: " ^ m

(* --- plans: sampling determinism and JSON round-trips ------------------ *)

let test_sample_deterministic () =
  for seed = 0 to 99 do
    let spec1, plan1 = Plan.sample ~seed () in
    let spec2, plan2 = Plan.sample ~seed () in
    Alcotest.(check bool) (Printf.sprintf "spec stable at seed %d" seed) true (spec1 = spec2);
    Alcotest.(check bool) (Printf.sprintf "plan stable at seed %d" seed) true (plan1 = plan2)
  done

let test_plan_json_roundtrip () =
  for seed = 0 to 199 do
    let spec, plan = Plan.sample ~seed () in
    let spec' = Plan.spec_of_json (Plan.spec_to_json spec) in
    let plan' = Plan.of_string (Plan.to_string plan) in
    Alcotest.(check bool) (Printf.sprintf "spec roundtrips at seed %d" seed) true (spec = spec');
    Alcotest.(check bool) (Printf.sprintf "plan roundtrips at seed %d" seed) true (plan = plan')
  done

let test_plan_times_sorted_and_bounded () =
  for seed = 0 to 199 do
    let _, plan = Plan.sample ~seed () in
    Alcotest.(check bool) "non-empty" true (plan <> []);
    Alcotest.(check bool) "sorted" true (Plan.sort_by_time plan = plan);
    List.iter
      (fun f ->
        let t = Plan.time_of_fault f in
        (* restarts trail their crash by a sampled duration, so they may
           land past the sampling horizon *)
        let bound =
          match f with Plan.Restart _ -> Plan.horizon +. 200.0 | _ -> Plan.horizon
        in
        Alcotest.(check bool) "within horizon" true (t >= 0.0 && t <= bound))
      plan
  done

let test_plan_rejects_malformed () =
  let raises s =
    match Plan.of_string s with
    | exception (Plan.Malformed _ | Ac3_crypto.Codec.Decode_error _) -> ()
    | _ -> Alcotest.failf "accepted malformed plan %s" s
  in
  raises "{}";
  raises {|[{"kind":"meteor","at":1.0}]|};
  raises {|[{"kind":"crash","at":1.0}]|};
  (* spec arity must match the shape *)
  match
    Plan.spec_of_json
      (Json.Obj
         [
           ("seed", Json.Int 1);
           ("shape", Json.String "cyclic");
           ("parties", Json.Int 5);
           ("nchains", Json.Int 2);
           ("extra_edges", Json.Int 0);
         ])
  with
  | exception Plan.Malformed _ -> ()
  | _ -> Alcotest.fail "accepted cyclic spec with 5 parties"

(* --- determinism of whole runs (QCheck) -------------------------------- *)

(* Same seeded plan, run twice: byte-identical protocol traces, chaos
   traces, and oracle verdicts. Counts are small because each case is a
   full simulation. *)
let qcheck_run_deterministic =
  QCheck.Test.make ~name:"same seeded plan twice -> byte-identical run" ~count:3
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 400))
    (fun seed ->
      let spec, plan = Plan.sample ~seed () in
      List.for_all
        (fun protocol ->
          let r1 = Runner.run_one ~spec ~plan ~protocol () in
          let r2 = Runner.run_one ~spec ~plan ~protocol () in
          let t1 = Option.map trace_string r1.Runner.trace in
          let t2 = Option.map trace_string r2.Runner.trace in
          let c1 = Option.map trace_string r1.Runner.chaos_trace in
          let c2 = Option.map trace_string r2.Runner.chaos_trace in
          t1 = t2 && c1 = c2 && verdict_string r1 = verdict_string r2)
        [ Runner.P_herlihy; Runner.P_ac3wn ])

(* Serializing a plan and replaying the parsed copy matches the original
   run's verdicts exactly. *)
let qcheck_replay_equals_original =
  QCheck.Test.make ~name:"serialized plan replays to the original outcome" ~count:3
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 400))
    (fun seed ->
      let spec, plan = Plan.sample ~seed () in
      let reports = Runner.run_all ~spec ~plan () in
      let repro = Repro.of_reports ~note:"property" ~spec ~plan reports in
      let parsed = Repro.of_string (Repro.to_string repro) in
      Repro.replay_ok (Repro.replay parsed))

(* --- the committed reproducer corpus ----------------------------------- *)

(* cwd is the test dir under `dune runtest` but the project root under
   `dune exec test/test_chaos.exe`. *)
let corpus_dir () =
  if Sys.file_exists "chaos_corpus" then "chaos_corpus" else Filename.concat "test" "chaos_corpus"

let corpus_files () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort compare
  |> List.map (Filename.concat dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_corpus_replays () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter
    (fun path ->
      let repro = Repro.of_string (read_file path) in
      let results = Repro.replay repro in
      List.iter
        (fun (r : Repro.replay_result) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s matches its recorded verdict" path
               (Runner.protocol_name r.Repro.expected.Repro.protocol))
            true r.Repro.matches)
        results;
      Alcotest.(check bool) (path ^ " has expectations") true (results <> []))
    (corpus_files ())

(* The acceptance-criterion entry: a Sec 3-style crash schedule under
   which Herlihy loses a deposit while AC3WN commits atomically. *)
let test_corpus_has_crash_schedule () =
  let is_crash = function Plan.Crash _ -> true | _ -> false in
  let witnesses =
    List.filter
      (fun path ->
        let repro = Repro.of_string (read_file path) in
        List.exists is_crash repro.Repro.plan
        && List.exists
             (fun (e : Repro.expectation) ->
               e.Repro.protocol = Runner.P_herlihy && (not e.Repro.pass) && e.Repro.deposit_lost)
             repro.Repro.expect
        && List.exists
             (fun (e : Repro.expectation) ->
               e.Repro.protocol = Runner.P_ac3wn && e.Repro.pass && e.Repro.committed)
             repro.Repro.expect)
      (corpus_files ())
  in
  Alcotest.(check bool) "a crash schedule breaks herlihy but not ac3wn" true (witnesses <> [])

(* --- the bounded smoke sweep ------------------------------------------- *)

let test_smoke_sweep () =
  let summary = Runner.sweep ~seed:1 ~runs:50 () in
  Alcotest.(check int) "no unexplained violations (harness self-check)" 0
    summary.Runner.unexplained_failures;
  Alcotest.(check int) "every settlement inside its static flow interval" 0
    summary.Runner.interval_violations;
  let counts p = List.assoc p summary.Runner.per_protocol in
  let herlihy = counts Runner.P_herlihy and ac3wn = counts Runner.P_ac3wn in
  (* every plan produced a verdict, a rejection, or a skip *)
  List.iter
    (fun (_, c) ->
      Alcotest.(check int) "all runs accounted for" 50
        (c.Runner.ran + c.Runner.rejected + c.Runner.skipped))
    summary.Runner.per_protocol;
  (* the paper's claim, measured: the witness protocol never loses a
     deposit under any sampled fault plan, the hashlock baseline does *)
  Alcotest.(check int) "ac3wn never violates the oracle" 0 ac3wn.Runner.violations;
  Alcotest.(check bool) "herlihy violates under chaos" true (herlihy.Runner.violations > 0);
  Alcotest.(check bool) "herlihy also commits under benign plans" true
    (herlihy.Runner.committed > 0)

(* --- shrinking --------------------------------------------------------- *)

(* Shrinking a known violation drops irrelevant faults and the result
   still fails; weakening never makes a fault stronger. *)
let test_shrink_seed_92 () =
  let spec, plan = Plan.sample ~seed:92 () in
  Alcotest.(check bool) "seed 92 fails before shrinking" true
    (Shrink.still_fails ~spec ~protocol:Runner.P_herlihy plan);
  let shrunk = Shrink.shrink ~spec ~protocol:Runner.P_herlihy plan in
  Alcotest.(check bool) "shrunk plan still fails" true
    (Shrink.still_fails ~spec ~protocol:Runner.P_herlihy shrunk);
  Alcotest.(check bool) "shrunk is no larger" true (List.length shrunk <= List.length plan);
  Alcotest.(check bool) "shrunk to the single crash fault" true
    (match shrunk with [ Plan.Crash _ ] -> true | _ -> false)

let test_weaken_fault () =
  let f = Plan.Drop { chain = "c0"; at = 10.0; duration = 100.0; p = 0.8 } in
  (match Shrink.weaken_fault f with
  | Some (Plan.Drop { duration; _ }) ->
      Alcotest.(check (float 1e-9)) "duration halves" 50.0 duration
  | _ -> Alcotest.fail "drop should weaken");
  (match Shrink.weaken_fault (Plan.Crash { party = 0; at = 5.0 }) with
  | None -> ()
  | Some _ -> Alcotest.fail "crash has no weaker form")

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "sampling is deterministic" `Quick test_sample_deterministic;
          Alcotest.test_case "json roundtrip" `Quick test_plan_json_roundtrip;
          Alcotest.test_case "times sorted and bounded" `Quick test_plan_times_sorted_and_bounded;
          Alcotest.test_case "malformed plans rejected" `Quick test_plan_rejects_malformed;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest qcheck_run_deterministic;
          QCheck_alcotest.to_alcotest qcheck_replay_equals_original;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "every reproducer replays" `Quick test_corpus_replays;
          Alcotest.test_case "sec 3 crash schedule present" `Quick test_corpus_has_crash_schedule;
        ] );
      ( "sweep", [ Alcotest.test_case "50-run smoke sweep" `Slow test_smoke_sweep ] );
      ( "shrink",
        [
          Alcotest.test_case "seed 92 shrinks to a crash" `Slow test_shrink_seed_92;
          Alcotest.test_case "weaken_fault" `Quick test_weaken_fault;
        ] );
    ]
