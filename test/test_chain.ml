(* Tests for the blockchain substrate: transactions, ledger rules, block
   store and reorgs, mempool, mining over a gossip network, SPV light
   clients, and contract execution. *)

module Engine = Ac3_sim.Engine
module Rng = Ac3_sim.Rng
module Keys = Ac3_crypto.Keys
module Codec = Ac3_crypto.Codec
open Ac3_chain

(* --- Test contracts ---------------------------------------------------- *)

(* A counter: deployed with an initial value, incremented by calls. *)
module Counter = struct
  let code_id = "test-counter"

  let init _ctx args =
    match args with Value.Int n -> Ok (Value.Int n) | _ -> Error "expected int argument"

  let call _ctx ~state ~fn ~args:_ =
    match (fn, state) with
    | "incr", Value.Int n -> Contract_iface.ok (Value.Int (Int64.add n 1L))
    | "incr", _ -> Contract_iface.reject "corrupt state"
    | _ -> Contract_iface.reject "unknown function %s" fn
end

(* A vault: locks the deployment deposit; "claim" pays everything to the
   address passed as argument. Exercises deposits and payouts. *)
module Vault = struct
  let code_id = "test-vault"

  let init _ctx args = match args with Value.Unit -> Ok (Value.Bool false) | _ -> Error "no args"

  let call ctx ~state ~fn ~args =
    match (fn, state, args) with
    | "claim", Value.Bool false, Value.Bytes addr ->
        Contract_iface.ok ~payouts:[ (addr, ctx.Contract_iface.balance) ]
          ~events:[ ("claimed", Value.Bytes addr) ]
          (Value.Bool true)
    | "claim", Value.Bool true, _ -> Contract_iface.reject "already claimed"
    | _ -> Contract_iface.reject "bad call"
end

let test_registry () =
  let r = Contract_iface.create_registry () in
  Contract_iface.register r (module Counter : Contract_iface.CODE);
  Contract_iface.register r (module Vault : Contract_iface.CODE);
  r

(* --- Harness ------------------------------------------------------------ *)

let alice = Keys.create "chain-test-alice"

let bob = Keys.create "chain-test-bob"

let carol = Keys.create "chain-test-carol"

let coin n = Amount.of_int n

let default_premine = [ (Keys.address alice, coin 10_000_000); (Keys.address bob, coin 10_000_000) ]

type world = {
  engine : Engine.t;
  network : Network.t;
  nodes : Node.t array;
  miners : Miner.t array;
}

(* A small single-chain world: [n] nodes, each mining an equal share. *)
let make_world ?(seed = 11) ?(n = 3) ?(paramsdelta = fun p -> p) () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let network = Network.create ~engine ~rng:(Rng.split rng) () in
  let params =
    paramsdelta
      (Params.make "testchain" ~block_interval:10.0 ~pow_bits:8 ~block_capacity:50
         ~confirm_depth:3 ~premine:default_premine)
  in
  let registry = test_registry () in
  let nodes =
    Array.init n (fun i -> Node.create ~engine ~network ~params ~registry (Printf.sprintf "node%d" i))
  in
  let miners =
    Array.map
      (fun node ->
        Miner.create ~engine ~rng:(Rng.split rng) ~node
          ~address:(Keys.address (Keys.create ("miner-" ^ Node.id node)))
          ~share:(1.0 /. float_of_int n) ())
      nodes
  in
  Array.iter Miner.start miners;
  { engine; network; nodes; miners }

let run_until_height w h =
  ignore
    (Engine.run
       ~stop:(fun () -> Array.for_all (fun n -> Node.tip_height n >= h) w.nodes)
       ~until:200_000.0 w.engine)

(* --- Amount -------------------------------------------------------------- *)

let test_amount_arithmetic () =
  Alcotest.(check int64) "sum" 6L (Amount.sum [ 1L; 2L; 3L ]);
  Alcotest.(check int64) "sub" 1L Amount.(3L - 2L);
  Alcotest.check_raises "negative sub" Amount.Overflow (fun () -> ignore Amount.(2L - 3L));
  Alcotest.check_raises "overflow add" Amount.Overflow (fun () ->
      ignore Amount.(Int64.max_int + 1L));
  Alcotest.(check int64) "scale" 15L (Amount.scale 5L 3)

let test_amount_negative_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Amount.of_int64: negative") (fun () ->
      ignore (Amount.of_int64 (-5L)))

(* --- Value ---------------------------------------------------------------- *)

let value_gen =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let base =
           oneof
             [
               return Value.Unit;
               map (fun b -> Value.Bool b) bool;
               map (fun i -> Value.Int (Int64.of_int i)) int;
               map (fun s -> Value.String s) string_small;
               map (fun s -> Value.Bytes s) string_small;
             ]
         in
         if n <= 0 then base
         else
           oneof
             [
               base;
               map (fun l -> Value.List l) (list_size (0 -- 4) (self (n / 2)));
               map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2));
               map2 (fun t v -> Value.Tagged (t, v)) string_small (self (n / 2));
             ])

let qcheck_value_roundtrip =
  QCheck.Test.make ~name:"value codec roundtrips" ~count:300
    (QCheck.make ~print:Value.to_string value_gen)
    (fun v -> Value.equal v (Value.of_bytes (Value.to_bytes v)))

let test_value_record_access () =
  let r = Value.record [ ("a", Value.Int 1L); ("b", Value.Bool true) ] in
  Alcotest.(check bool) "field a" true (Value.field r "a" = Ok (Value.Int 1L));
  Alcotest.(check bool) "missing field" true (Result.is_error (Value.field r "zzz"));
  match Value.set_field r "a" (Value.Int 9L) with
  | Ok r' -> Alcotest.(check bool) "updated" true (Value.field r' "a" = Ok (Value.Int 9L))
  | Error e -> Alcotest.fail e

(* --- Tx -------------------------------------------------------------------- *)

let dummy_outpoint i = Outpoint.create ~txid:(Ac3_crypto.Sha256.digest (string_of_int i)) ~index:0

let test_tx_roundtrip () =
  let tx =
    Tx.make ~chain:"c" ~inputs:[ (dummy_outpoint 1, alice) ]
      ~outputs:[ { addr = Keys.address bob; amount = coin 5 } ]
      ~payload:(Tx.Deploy { code_id = "x"; args = Value.Int 3L; deposit = coin 2 })
      ~fee:(coin 1) ~nonce:7L ()
  in
  let tx' = Tx.of_bytes (Tx.to_bytes tx) in
  Alcotest.(check string) "txid stable" (Ac3_crypto.Hex.encode (Tx.txid tx))
    (Ac3_crypto.Hex.encode (Tx.txid tx'));
  Alcotest.(check bool) "signatures survive roundtrip" true (Tx.verify_signatures tx')

let test_tx_signature_binds_body () =
  let tx =
    Tx.make ~chain:"c" ~inputs:[ (dummy_outpoint 1, alice) ]
      ~outputs:[ { addr = Keys.address bob; amount = coin 5 } ]
      ~fee:(coin 1) ~nonce:7L ()
  in
  let tampered = { tx with Tx.outputs = [ { addr = Keys.address carol; amount = coin 5 } ] } in
  Alcotest.(check bool) "valid before" true (Tx.verify_signatures tx);
  Alcotest.(check bool) "tampering detected" false (Tx.verify_signatures tampered)

let test_tx_chain_binding () =
  (* The same logical transfer signed for chain "a" must not verify if
     re-labelled for chain "b" (cross-chain replay protection). *)
  let tx =
    Tx.make ~chain:"a" ~inputs:[ (dummy_outpoint 2, alice) ]
      ~outputs:[ { addr = Keys.address bob; amount = coin 5 } ]
      ~fee:(coin 1) ~nonce:1L ()
  in
  let replayed = { tx with Tx.chain = "b" } in
  Alcotest.(check bool) "replay on other chain rejected" false (Tx.verify_signatures replayed)

(* --- Pow -------------------------------------------------------------------- *)

let test_pow_target_bits () =
  let t8 = Pow.target_of_bits 8 in
  Alcotest.(check char) "first byte zero" '\x00' t8.[0];
  Alcotest.(check char) "second byte ff" '\xff' t8.[1];
  let t4 = Pow.target_of_bits 4 in
  Alcotest.(check char) "partial byte" '\x0f' t4.[0]

let test_pow_mine_and_verify () =
  let target = Pow.target_of_bits 8 in
  let hash_of_nonce n = Ac3_crypto.Sha256.digest ("block:" ^ Int64.to_string n) in
  let nonce = Pow.mine ~target hash_of_nonce in
  Alcotest.(check bool) "mined hash meets target" true
    (Pow.meets_target ~hash:(hash_of_nonce nonce) ~target)

let test_pow_work_monotone () =
  Alcotest.(check bool) "more bits, more work" true
    (Pow.work_of_target (Pow.target_of_bits 16) > Pow.work_of_target (Pow.target_of_bits 8))

(* --- Ledger ------------------------------------------------------------------ *)

let mk_store () =
  let params =
    Params.make "testchain" ~pow_bits:4 ~confirm_depth:2 ~premine:default_premine
  in
  Store.create ~params ~registry:(test_registry ())

(* Mine a block containing [txs] directly into the store (no network).
   [miner] varies the coinbase so distinct stores produce distinct
   blocks. *)
let mine_into ?(miner = "chain-test-miner") store txs =
  let parent = Store.tip store in
  let params = Store.params store in
  let height = parent.Block.header.Block.height + 1 in
  let fees = Amount.sum (List.map (fun (tx : Tx.t) -> tx.Tx.fee) txs) in
  let coinbase =
    Tx.coinbase ~chain:params.Params.chain_id ~height
      ~miner_addr:(Keys.address (Keys.create miner))
      ~reward:Amount.(params.Params.block_reward + fees)
  in
  let block =
    Block.mine ~chain:params.Params.chain_id ~height ~parent:(Block.hash parent)
      ~time:(float_of_int height) ~target:(Pow.target_of_bits params.Params.pow_bits)
      ~txs:(coinbase :: txs)
  in
  (block, Store.add_block store block)

let expect_added = function
  | Store.Added _ -> ()
  | Store.Duplicate -> Alcotest.fail "unexpected Duplicate"
  | Store.Orphaned -> Alcotest.fail "unexpected Orphaned"
  | Store.Invalid e -> Alcotest.fail ("unexpected Invalid: " ^ e)

let spend_premine store ~from_ ~to_ ~amount ~fee =
  let ledger = Store.ledger store in
  let utxos = Ledger.utxos_of ledger (Keys.address from_) in
  match utxos with
  | [] -> Alcotest.fail "no utxos to spend"
  | (op, (o : Tx.output)) :: _ ->
      let change = Amount.(o.amount - amount - fee) in
      Tx.make ~chain:"testchain" ~inputs:[ (op, from_) ]
        ~outputs:
          [
            { addr = Keys.address to_; amount };
            { addr = Keys.address from_; amount = change };
          ]
        ~fee ~nonce:0L ()

(* Regression for the D001 fixes in utxos_of and code_ids: both are
   sorted, so coin selection and registry listings cannot depend on
   hash-bucket order. *)
let test_ledger_utxos_sorted () =
  let store = mk_store () in
  for k = 1 to 4 do
    let tx = spend_premine store ~from_:alice ~to_:bob ~amount:(coin (100 * k)) ~fee:(coin 100) in
    let _, r = mine_into store [ tx ] in
    expect_added r
  done;
  let utxos = Ledger.utxos_of (Store.ledger store) (Keys.address bob) in
  Alcotest.(check bool) "bob accumulated several utxos" true (List.length utxos >= 4);
  let rec check_sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        Alcotest.(check bool) "strictly ascending outpoints" true (Outpoint.compare a b < 0);
        check_sorted rest
    | _ -> ()
  in
  check_sorted utxos;
  let ids = Contract_iface.code_ids (test_registry ()) in
  Alcotest.(check (list string)) "code ids sorted" (List.sort String.compare ids) ids

let test_ledger_premine () =
  let store = mk_store () in
  let ledger = Store.ledger store in
  Alcotest.(check int64) "alice premine" 10_000_000L (Ledger.balance_of ledger (Keys.address alice));
  Alcotest.(check int64) "bob premine" 10_000_000L (Ledger.balance_of ledger (Keys.address bob))

let test_ledger_transfer_and_conservation () =
  let store = mk_store () in
  let ledger = Store.ledger store in
  let supply0 = Ledger.total_supply ledger in
  let tx = spend_premine store ~from_:alice ~to_:bob ~amount:(coin 1000) ~fee:(coin 100) in
  let _, result = mine_into store [ tx ] in
  expect_added result;
  Alcotest.(check int64) "bob received" 10_001_000L (Ledger.balance_of ledger (Keys.address bob));
  Alcotest.(check int64) "alice debited" 9_998_900L (Ledger.balance_of ledger (Keys.address alice));
  (* Supply grows by exactly the block reward (fees are recycled to the
     miner). *)
  let params = Store.params store in
  Alcotest.(check int64) "conservation" Amount.(supply0 + params.Params.block_reward)
    (Ledger.total_supply ledger)

let test_ledger_rejects_double_spend () =
  let store = mk_store () in
  let tx1 = spend_premine store ~from_:alice ~to_:bob ~amount:(coin 1000) ~fee:(coin 100) in
  let _, r1 = mine_into store [ tx1 ] in
  expect_added r1;
  (* Same outpoint again: the UTXO is gone. *)
  let tx2 =
    {
      tx1 with
      Tx.nonce = 99L;
    }
  in
  let tx2 =
    Tx.make ~chain:"testchain"
      ~inputs:(List.map (fun (i : Tx.input) -> (i.outpoint, alice)) tx2.Tx.inputs)
      ~outputs:tx2.Tx.outputs ~fee:tx2.Tx.fee ~nonce:99L ()
  in
  let _, r2 = mine_into store [ tx2 ] in
  match r2 with
  | Store.Invalid reason ->
      Alcotest.(check bool) "mentions missing input" true
        (Astring.String.is_infix ~affix:"missing or spent" reason
        || Astring.String.is_infix ~affix:"invalid" reason)
  | _ -> Alcotest.fail "double spend accepted"

let test_ledger_rejects_theft () =
  (* Carol tries to spend Alice's UTXO with her own key. *)
  let store = mk_store () in
  let ledger = Store.ledger store in
  let op, (o : Tx.output) = List.hd (Ledger.utxos_of ledger (Keys.address alice)) in
  let tx =
    Tx.make ~chain:"testchain" ~inputs:[ (op, carol) ]
      ~outputs:[ { addr = Keys.address carol; amount = Amount.(o.amount - coin 100) } ]
      ~fee:(coin 100) ~nonce:0L ()
  in
  let _, r = mine_into store [ tx ] in
  match r with
  | Store.Invalid _ -> ()
  | _ -> Alcotest.fail "theft accepted"

let test_ledger_rejects_inflation () =
  (* Outputs exceeding inputs must be rejected. *)
  let store = mk_store () in
  let ledger = Store.ledger store in
  let op, (o : Tx.output) = List.hd (Ledger.utxos_of ledger (Keys.address alice)) in
  let tx =
    Tx.make ~chain:"testchain" ~inputs:[ (op, alice) ]
      ~outputs:[ { addr = Keys.address alice; amount = Amount.(o.amount + coin 1) } ]
      ~fee:Amount.zero ~nonce:0L ()
  in
  let _, r = mine_into store [ tx ] in
  match r with Store.Invalid _ -> () | _ -> Alcotest.fail "inflation accepted"

let test_ledger_fee_floor () =
  let store = mk_store () in
  let tx = spend_premine store ~from_:alice ~to_:bob ~amount:(coin 1000) ~fee:(coin 1) in
  let _, r = mine_into store [ tx ] in
  match r with Store.Invalid _ -> () | _ -> Alcotest.fail "underpaid fee accepted"

let test_ledger_contract_lifecycle () =
  let store = mk_store () in
  let ledger = Store.ledger store in
  (* Deploy a counter with initial value 5. *)
  let op, (o : Tx.output) = List.hd (Ledger.utxos_of ledger (Keys.address alice)) in
  let params = Store.params store in
  let fee = params.Params.deploy_fee in
  let deploy =
    Tx.make ~chain:"testchain" ~inputs:[ (op, alice) ]
      ~outputs:[ { addr = Keys.address alice; amount = Amount.(o.amount - fee) } ]
      ~payload:(Tx.Deploy { code_id = "test-counter"; args = Value.Int 5L; deposit = Amount.zero })
      ~fee ~nonce:0L ()
  in
  let _, r = mine_into store [ deploy ] in
  expect_added r;
  let cid = Contract_iface.contract_id_of_deploy ~txid:(Tx.txid deploy) in
  (match Ledger.contract ledger cid with
  | Some c -> Alcotest.(check bool) "initial state" true (Value.equal c.state (Value.Int 5L))
  | None -> Alcotest.fail "contract not created");
  (* Call incr. *)
  let op2, (o2 : Tx.output) = List.hd (Ledger.utxos_of ledger (Keys.address alice)) in
  let cfee = params.Params.call_fee in
  let call =
    Tx.make ~chain:"testchain" ~inputs:[ (op2, alice) ]
      ~outputs:[ { addr = Keys.address alice; amount = Amount.(o2.amount - cfee) } ]
      ~payload:
        (Tx.Call { contract_id = cid; fn = "incr"; args = Value.Unit; deposit = Amount.zero })
      ~fee:cfee ~nonce:1L ()
  in
  let _, r2 = mine_into store [ call ] in
  expect_added r2;
  match Ledger.contract ledger cid with
  | Some c -> Alcotest.(check bool) "incremented" true (Value.equal c.state (Value.Int 6L))
  | None -> Alcotest.fail "contract vanished"

let test_ledger_vault_payout () =
  let store = mk_store () in
  let ledger = Store.ledger store in
  let params = Store.params store in
  let op, (o : Tx.output) = List.hd (Ledger.utxos_of ledger (Keys.address alice)) in
  let fee = params.Params.deploy_fee in
  let deposit = coin 5000 in
  let deploy =
    Tx.make ~chain:"testchain" ~inputs:[ (op, alice) ]
      ~outputs:[ { addr = Keys.address alice; amount = Amount.(o.amount - fee - deposit) } ]
      ~payload:(Tx.Deploy { code_id = "test-vault"; args = Value.Unit; deposit })
      ~fee ~nonce:0L ()
  in
  let _, r = mine_into store [ deploy ] in
  expect_added r;
  let cid = Contract_iface.contract_id_of_deploy ~txid:(Tx.txid deploy) in
  (match Ledger.contract ledger cid with
  | Some c -> Alcotest.(check int64) "deposit locked" 5000L c.balance
  | None -> Alcotest.fail "vault missing");
  let bob_before = Ledger.balance_of ledger (Keys.address bob) in
  (* Bob claims the vault to his own address. *)
  let opb, (ob : Tx.output) = List.hd (Ledger.utxos_of ledger (Keys.address bob)) in
  let cfee = params.Params.call_fee in
  let claim =
    Tx.make ~chain:"testchain" ~inputs:[ (opb, bob) ]
      ~outputs:[ { addr = Keys.address bob; amount = Amount.(ob.amount - cfee) } ]
      ~payload:
        (Tx.Call
           {
             contract_id = cid;
             fn = "claim";
             args = Value.Bytes (Keys.address bob);
             deposit = Amount.zero;
           })
      ~fee:cfee ~nonce:1L ()
  in
  let _, r2 = mine_into store [ claim ] in
  expect_added r2;
  Alcotest.(check int64) "bob received vault minus fee"
    Amount.(bob_before + deposit - cfee)
    (Ledger.balance_of ledger (Keys.address bob));
  (match Ledger.contract ledger cid with
  | Some c ->
      Alcotest.(check int64) "vault empty" 0L c.balance;
      Alcotest.(check bool) "claimed" true (Value.equal c.state (Value.Bool true))
  | None -> Alcotest.fail "vault missing");
  (* A second claim must be rejected (contract refuses). *)
  let opb2, (ob2 : Tx.output) = List.hd (Ledger.utxos_of ledger (Keys.address bob)) in
  let claim2 =
    Tx.make ~chain:"testchain" ~inputs:[ (opb2, bob) ]
      ~outputs:[ { addr = Keys.address bob; amount = Amount.(ob2.amount - cfee) } ]
      ~payload:
        (Tx.Call
           {
             contract_id = cid;
             fn = "claim";
             args = Value.Bytes (Keys.address bob);
             deposit = Amount.zero;
           })
      ~fee:cfee ~nonce:2L ()
  in
  let _, r3 = mine_into store [ claim2 ] in
  match r3 with Store.Invalid _ -> () | _ -> Alcotest.fail "double claim accepted"

(* --- Store / reorgs ------------------------------------------------------------ *)

let test_store_duplicate_and_orphan () =
  let store = mk_store () in
  let b1, r1 = mine_into store [] in
  expect_added r1;
  Alcotest.(check bool) "duplicate detected" true (Store.add_block store b1 = Store.Duplicate);
  (* A block whose parent we never saw: orphaned. *)
  let params = Store.params store in
  let phantom_parent = Ac3_crypto.Sha256.digest "phantom" in
  let cb =
    Tx.coinbase ~chain:"testchain" ~height:5
      ~miner_addr:(Keys.address carol)
      ~reward:params.Params.block_reward
  in
  let orphan =
    Block.mine ~chain:"testchain" ~height:5 ~parent:phantom_parent ~time:9.0
      ~target:(Pow.target_of_bits params.Params.pow_bits) ~txs:[ cb ]
  in
  Alcotest.(check bool) "orphaned" true (Store.add_block store orphan = Store.Orphaned)

let test_store_rejects_bad_pow () =
  let store = mk_store () in
  let parent = Store.tip store in
  let params = Store.params store in
  let cb =
    Tx.coinbase ~chain:"testchain" ~height:1 ~miner_addr:(Keys.address carol)
      ~reward:params.Params.block_reward
  in
  (* Forge a header without grinding. *)
  let header =
    {
      Block.chain = "testchain";
      height = 1;
      parent = Block.hash parent;
      merkle_root = Block.merkle_root_of_txs [ cb ];
      time = 1.0;
      target = Pow.target_of_bits params.Params.pow_bits;
      nonce = 0L;
    }
  in
  let block = { Block.header; txs = [ cb ] } in
  let ok = match Store.add_block store block with Store.Invalid _ -> true | _ -> false in
  (* The forged nonce could accidentally satisfy an 4-bit target; accept
     either Invalid or (rarely) Added. With pow_bits 4, P(valid) = 1/16. *)
  ignore ok

let test_store_reorg_switches_to_heavier_branch () =
  (* Build two stores sharing genesis; mine a longer branch on the second
     and feed it to the first. *)
  let store_a = mk_store () in
  let store_b = mk_store () in
  let b1, r = mine_into store_a [] in
  expect_added r;
  ignore b1;
  let tip_a1 = Store.tip_hash store_a in
  (* Branch B: two blocks from genesis, by a different miner so the
     branches diverge. *)
  let c1, rb1 = mine_into ~miner:"chain-test-miner-b" store_b [] in
  expect_added rb1;
  let c2, rb2 = mine_into ~miner:"chain-test-miner-b" store_b [] in
  expect_added rb2;
  (* Feed branch B into A: first block ties (no switch), second wins. *)
  expect_added (Store.add_block store_a c1);
  Alcotest.(check string) "tie keeps first-seen tip" (Ac3_crypto.Hex.encode tip_a1)
    (Ac3_crypto.Hex.encode (Store.tip_hash store_a));
  expect_added (Store.add_block store_a c2);
  Alcotest.(check string) "heavier branch wins" (Ac3_crypto.Hex.encode (Block.hash c2))
    (Ac3_crypto.Hex.encode (Store.tip_hash store_a));
  Alcotest.(check int) "height 2" 2 (Store.tip_height store_a)

let test_store_reorg_restores_ledger () =
  (* A transfer on branch A disappears after a reorg to branch B. *)
  let store_a = mk_store () in
  let store_b = mk_store () in
  let tx = spend_premine store_a ~from_:alice ~to_:bob ~amount:(coin 1000) ~fee:(coin 100) in
  let _, r = mine_into store_a [ tx ] in
  expect_added r;
  Alcotest.(check int64) "bob credited on A" 10_001_000L
    (Ledger.balance_of (Store.ledger store_a) (Keys.address bob));
  let c1, rb1 = mine_into ~miner:"chain-test-miner-b" store_b [] in
  expect_added rb1;
  let c2, rb2 = mine_into ~miner:"chain-test-miner-b" store_b [] in
  expect_added rb2;
  expect_added (Store.add_block store_a c1);
  expect_added (Store.add_block store_a c2);
  (* After the reorg the transfer is gone. *)
  Alcotest.(check int64) "bob back to premine" 10_000_000L
    (Ledger.balance_of (Store.ledger store_a) (Keys.address bob));
  Alcotest.(check int) "confirmations reset" 0 (Store.confirmations store_a (Tx.txid tx))

let test_store_confirmations () =
  let store = mk_store () in
  let tx = spend_premine store ~from_:alice ~to_:bob ~amount:(coin 10) ~fee:(coin 100) in
  let _, r = mine_into store [ tx ] in
  expect_added r;
  Alcotest.(check int) "one conf" 1 (Store.confirmations store (Tx.txid tx));
  let _, r2 = mine_into store [] in
  expect_added r2;
  let _, r3 = mine_into store [] in
  expect_added r3;
  Alcotest.(check int) "three confs" 3 (Store.confirmations store (Tx.txid tx))

let test_store_headers_from () =
  let store = mk_store () in
  for _ = 1 to 5 do
    let _, r = mine_into store [] in
    expect_added r
  done;
  let headers = Store.headers_from store ~from_:2 in
  Alcotest.(check int) "count" 4 (List.length headers);
  Alcotest.(check int) "first height" 2 (List.hd headers).Block.height

(* --- Mempool --------------------------------------------------------------- *)

let test_mempool_order_and_dedup () =
  let mp = Mempool.create () in
  let store = mk_store () in
  let tx1 = spend_premine store ~from_:alice ~to_:bob ~amount:(coin 1) ~fee:(coin 100) in
  let tx2 = spend_premine store ~from_:bob ~to_:alice ~amount:(coin 2) ~fee:(coin 100) in
  Alcotest.(check bool) "add 1" true (Result.is_ok (Mempool.add mp tx1));
  Alcotest.(check bool) "add 2" true (Result.is_ok (Mempool.add mp tx2));
  Alcotest.(check bool) "dup rejected" true (Result.is_error (Mempool.add mp tx1));
  Alcotest.(check int) "size" 2 (Mempool.size mp);
  let c = Mempool.candidates mp ~limit:10 in
  Alcotest.(check int) "oldest first" 2 (List.length c);
  Alcotest.(check bool) "tx1 first" true (Tx.txid (List.hd c) = Tx.txid tx1);
  Mempool.remove mp (Tx.txid tx1);
  Alcotest.(check int) "removed" 1 (Mempool.size mp)

(* Regression for the candidates hot path: the sort was replaced by a
   reverse (entries are newest-first with monotone seq), which must be
   indistinguishable from sorting by arrival order under any add/remove
   interleaving — including ones that trigger the lazy sweep. *)
let qcheck_mempool_candidates_arrival_order =
  (* A cheap unique unsigned transfer per index; the mempool never
     validates, it only dedups by txid. *)
  let dummy_tx i =
    Tx.make ~chain:"mp-prop"
      ~inputs:[]
      ~outputs:[ { Tx.addr = "nobody"; amount = coin 1 } ]
      ~fee:(coin 1) ~nonce:(Int64.of_int i) ()
  in
  QCheck.Test.make ~name:"mempool candidates = arrival order" ~count:100
    QCheck.(list (pair bool small_nat))
    (fun ops ->
      let mp = Mempool.create () in
      (* model: txids in arrival order *)
      let arrived = ref [] in
      let counter = ref 0 in
      List.iter
        (fun (is_add, k) ->
          if is_add || !arrived = [] then begin
            let tx = dummy_tx !counter in
            incr counter;
            match Mempool.add mp tx with
            | Ok _ -> arrived := !arrived @ [ Tx.txid tx ]
            | Error _ -> QCheck.Test.fail_report "fresh tx rejected"
          end
          else begin
            let victim = List.nth !arrived (k mod List.length !arrived) in
            Mempool.remove mp victim;
            arrived := List.filter (fun id -> id <> victim) !arrived
          end)
        ops;
      let got = List.map Tx.txid (Mempool.candidates mp ~limit:max_int) in
      got = !arrived)

(* Regression for the capacity/eviction policy under swap load: a flood
   of high-fee transfers must churn only the transfer slots — a pending
   deposit (Deploy) or refund (Call) being dropped would strand or
   un-refund an in-flight swap no matter how little it paid in fees. *)
let test_mempool_eviction_protects_settlement () =
  let mk ?payload ~fee i =
    Tx.make ~chain:"mp-evict" ~inputs:[] ?payload
      ~outputs:[ { Tx.addr = "nobody"; amount = coin 1 } ]
      ~fee:(coin fee) ~nonce:(Int64.of_int i) ()
  in
  let deposit =
    mk ~payload:(Tx.Deploy { code_id = "htlc"; args = Value.Unit; deposit = coin 500 }) ~fee:1 0
  in
  let refund =
    mk
      ~payload:
        (Tx.Call { contract_id = "c0"; fn = "refund"; args = Value.Unit; deposit = Amount.zero })
      ~fee:1 1
  in
  let mp = Mempool.create ~capacity:4 () in
  let expect_ok label tx =
    match Mempool.add mp tx with
    | Ok evicted -> evicted
    | Error e -> Alcotest.fail (label ^ ": " ^ e)
  in
  ignore (expect_ok "deposit" deposit : Tx.t list);
  ignore (expect_ok "refund" refund : Tx.t list);
  ignore (expect_ok "t1" (mk ~fee:10 2) : Tx.t list);
  ignore (expect_ok "t2" (mk ~fee:10 3) : Tx.t list);
  (* Pool full. Equal-fee flood: the first two displace the cheap
     transfers, the rest tie with a resident transfer and bounce — a
     transfer never outranks Deploy/Call regardless of fee. *)
  let evicted_payloads = ref [] in
  for i = 4 to 13 do
    match Mempool.add mp (mk ~fee:1000 i) with
    | Ok evicted ->
        List.iter (fun (tx : Tx.t) -> evicted_payloads := tx.Tx.payload :: !evicted_payloads) evicted
    | Error e -> Alcotest.(check string) "full, not downgraded" "mempool full" e
  done;
  Alcotest.(check int) "only the two cheap transfers churned" 2 (List.length !evicted_payloads);
  List.iter
    (fun p -> Alcotest.(check bool) "evictee is a transfer" true (p = Tx.Transfer))
    !evicted_payloads;
  Alcotest.(check bool) "deposit survives flood" true (Mempool.mem mp (Tx.txid deposit));
  Alcotest.(check bool) "refund survives flood" true (Mempool.mem mp (Tx.txid refund));
  (* A fresh minimum-fee refund still gets in: settlement class beats
     any transfer, so it displaces one rather than being turned away. *)
  let refund2 =
    mk
      ~payload:
        (Tx.Call { contract_id = "c1"; fn = "refund"; args = Value.Unit; deposit = Amount.zero })
      ~fee:1 99
  in
  (match Mempool.add mp refund2 with
  | Ok [ evicted ] ->
      Alcotest.(check bool) "call displaces a transfer" true (evicted.Tx.payload = Tx.Transfer)
  | Ok _ -> Alcotest.fail "expected exactly one eviction"
  | Error e -> Alcotest.fail ("refund call rejected: " ^ e));
  let refund3 =
    mk
      ~payload:
        (Tx.Call { contract_id = "c2"; fn = "refund"; args = Value.Unit; deposit = Amount.zero })
      ~fee:1 100
  in
  (match Mempool.add mp refund3 with
  | Ok [ evicted ] ->
      Alcotest.(check bool) "last transfer displaced" true (evicted.Tx.payload = Tx.Transfer)
  | Ok _ -> Alcotest.fail "expected exactly one eviction"
  | Error e -> Alcotest.fail ("refund call rejected: " ^ e));
  (* All four slots now hold settlement work; even an absurd-fee
     transfer cannot claw one back. *)
  match Mempool.add mp (mk ~fee:1_000_000 101) with
  | Ok _ -> Alcotest.fail "transfer evicted settlement work"
  | Error e -> Alcotest.(check string) "rejected outright" "mempool full" e

(* --- End-to-end mining over the network ----------------------------------- *)

let test_network_convergence () =
  let w = make_world ~seed:21 () in
  run_until_height w 10;
  let tips = Array.map (fun n -> Store.tip_hash (Node.store n)) w.nodes in
  (* All nodes eventually agree on a prefix; run a bit longer for the tips
     to settle, then compare at a common height. *)
  ignore tips;
  ignore (Engine.run ~until:(Engine.now w.engine +. 30.0) w.engine);
  let h = Array.fold_left (fun acc n -> min acc (Node.tip_height n)) max_int w.nodes in
  let common = h - 2 in
  let hashes =
    Array.map
      (fun n ->
        match Store.block_at_height (Node.store n) common with
        | Some b -> Block.hash b
        | None -> Alcotest.fail "missing block at common height")
      w.nodes
  in
  Array.iter
    (fun x -> Alcotest.(check bool) "nodes agree below tip" true (String.equal x hashes.(0)))
    hashes

let test_network_tx_inclusion () =
  let w = make_world ~seed:22 () in
  run_until_height w 2;
  let node = w.nodes.(0) in
  let wallet = Wallet.create ~identity:alice ~node in
  (match Wallet.pay wallet ~to_:(Keys.address bob) ~amount:(coin 777) with
  | Ok txid ->
      ignore
        (Engine.run
           ~stop:(fun () ->
             Array.for_all (fun n -> Node.confirmations n txid >= 3) w.nodes)
           ~until:200_000.0 w.engine);
      Array.iter
        (fun n ->
          Alcotest.(check bool)
            ("confirmed on " ^ Node.id n)
            true
            (Node.confirmations n txid >= 3))
        w.nodes
  | Error e -> Alcotest.fail e);
  (* Balances reflect the payment on every node. *)
  Array.iter
    (fun n ->
      Alcotest.(check int64) "bob's balance" 10_000_777L (Node.balance_of n (Keys.address bob)))
    w.nodes

let test_network_partition_forks_and_heals () =
  let w = make_world ~seed:23 ~n:4 () in
  run_until_height w 3;
  (* Split 2-2; both sides keep mining. *)
  Network.partition w.network [ [ "node0"; "node1" ]; [ "node2"; "node3" ] ];
  let h0 = Node.tip_height w.nodes.(0) in
  ignore
    (Engine.run
       ~stop:(fun () -> Array.for_all (fun n -> Node.tip_height n >= h0 + 4) w.nodes)
       ~until:200_000.0 w.engine);
  let tip_a = Store.tip_hash (Node.store w.nodes.(0)) in
  let tip_b = Store.tip_hash (Node.store w.nodes.(2)) in
  Alcotest.(check bool) "partition diverges tips" true (not (String.equal tip_a tip_b));
  (* Heal; peers exchange their next blocks and converge via reorg. *)
  Network.heal w.network;
  let target_h = max (Node.tip_height w.nodes.(0)) (Node.tip_height w.nodes.(2)) + 6 in
  ignore
    (Engine.run
       ~stop:(fun () -> Array.for_all (fun n -> Node.tip_height n >= target_h) w.nodes)
       ~until:200_000.0 w.engine);
  let common = target_h - 3 in
  let hs =
    Array.map
      (fun n ->
        match Store.block_at_height (Node.store n) common with
        | Some b -> Block.hash b
        | None -> Alcotest.fail "missing height")
      w.nodes
  in
  Array.iter (fun x -> Alcotest.(check bool) "converged" true (String.equal x hs.(0))) hs

let test_node_crash_and_recovery () =
  let w = make_world ~seed:24 () in
  run_until_height w 3;
  Node.crash w.nodes.(2);
  let h = Node.tip_height w.nodes.(0) in
  ignore
    (Engine.run
       ~stop:(fun () -> Node.tip_height w.nodes.(0) >= h + 3)
       ~until:200_000.0 w.engine);
  Alcotest.(check bool) "crashed node lags" true (Node.tip_height w.nodes.(2) < Node.tip_height w.nodes.(0));
  Node.recover w.nodes.(2);
  (* After recovery the node catches up from freshly relayed blocks. *)
  let target = Node.tip_height w.nodes.(0) + 4 in
  ignore
    (Engine.run
       ~stop:(fun () -> Array.for_all (fun n -> Node.tip_height n >= target) w.nodes)
       ~until:200_000.0 w.engine);
  Alcotest.(check bool) "caught up" true (Node.tip_height w.nodes.(2) >= target)

(* --- Wallet ------------------------------------------------------------------ *)

let test_wallet_insufficient_funds () =
  let w = make_world ~seed:25 () in
  let wallet = Wallet.create ~identity:(Keys.create "chain-test-pauper") ~node:w.nodes.(0) in
  match Wallet.pay wallet ~to_:(Keys.address bob) ~amount:(coin 1) with
  | Error e -> Alcotest.(check bool) "explains" true (Astring.String.is_prefix ~affix:"insufficient" e)
  | Ok _ -> Alcotest.fail "paid with no funds"

let test_wallet_change () =
  let store = mk_store () in
  (* A wallet needs a node; build a tiny world around the shared store via
     direct ledger access instead. *)
  ignore store;
  let w = make_world ~seed:26 () in
  run_until_height w 2;
  let wallet = Wallet.create ~identity:alice ~node:w.nodes.(0) in
  match Wallet.build wallet ~outputs:[ { addr = Keys.address bob; amount = coin 123 } ] () with
  | Ok tx ->
      (* Exactly one change output back to alice. *)
      let change =
        List.filter (fun (o : Tx.output) -> o.addr = Wallet.address wallet) tx.Tx.outputs
      in
      Alcotest.(check int) "change output" 1 (List.length change)
  | Error e -> Alcotest.fail e

let test_wallet_pending_outpoint_not_reused () =
  (* Alice's premine is a single UTXO. A second payment submitted before
     the first confirms must not double-spend it (miners would silently
     drop the conflicting transaction); once the first is mined the
     change is spendable and the retry goes through. *)
  let w = make_world ~seed:27 () in
  run_until_height w 2;
  let wallet = Wallet.create ~identity:alice ~node:w.nodes.(0) in
  let txid1 =
    match Wallet.pay wallet ~to_:(Keys.address bob) ~amount:(coin 100) with
    | Ok txid -> txid
    | Error e -> Alcotest.fail e
  in
  (match Wallet.pay wallet ~to_:(Keys.address bob) ~amount:(coin 100) with
  | Error e ->
      Alcotest.(check bool) "declines rather than double-spends" true
        (Astring.String.is_prefix ~affix:"insufficient" e)
  | Ok _ -> Alcotest.fail "reused an outpoint pending in the mempool");
  ignore
    (Engine.run
       ~stop:(fun () -> Node.confirmations w.nodes.(0) txid1 >= 3)
       ~until:200_000.0 w.engine);
  match Wallet.pay wallet ~to_:(Keys.address bob) ~amount:(coin 100) with
  | Error e -> Alcotest.fail e
  | Ok txid2 ->
      ignore
        (Engine.run
           ~stop:(fun () -> Node.confirmations w.nodes.(0) txid2 >= 3)
           ~until:200_000.0 w.engine);
      Alcotest.(check int64) "both payments landed" 10_000_200L
        (Node.balance_of w.nodes.(0) (Keys.address bob))

let test_wallet_siblings_serialize_on_outpoint () =
  (* The load engine gives every in-flight swap its own Wallet over a
     shared identity, so two concurrent swaps contend for the same
     premine outpoint through *different* wallet instances. Selection
     consults the node mempool's spent-outpoint index, not per-wallet
     state: the second wallet must decline rather than emit a
     conflicting spend the miners would silently drop. *)
  let w = make_world ~seed:31 () in
  run_until_height w 2;
  let node = w.nodes.(0) in
  let w1 = Wallet.create ~identity:alice ~node in
  let w2 = Wallet.create ~identity:alice ~node in
  let txid1 =
    match Wallet.pay w1 ~to_:(Keys.address bob) ~amount:(coin 100) with
    | Ok txid -> txid
    | Error e -> Alcotest.fail e
  in
  (match Wallet.pay w2 ~to_:(Keys.address carol) ~amount:(coin 100) with
  | Error e ->
      Alcotest.(check bool) "sibling declines pending outpoint" true
        (Astring.String.is_prefix ~affix:"insufficient" e)
  | Ok _ -> Alcotest.fail "sibling wallet double-spent a pending outpoint");
  ignore
    (Engine.run ~stop:(fun () -> Node.confirmations node txid1 >= 3) ~until:200_000.0 w.engine);
  (* Once the first spend confirms, its change is fair game and the
     sibling's retry serializes behind it. *)
  match Wallet.pay w2 ~to_:(Keys.address carol) ~amount:(coin 100) with
  | Error e -> Alcotest.fail e
  | Ok txid2 ->
      ignore
        (Engine.run ~stop:(fun () -> Node.confirmations node txid2 >= 3) ~until:200_000.0 w.engine);
      Alcotest.(check int64) "bob paid exactly once" 10_000_100L
        (Node.balance_of node (Keys.address bob));
      Alcotest.(check int64) "carol paid exactly once" 100L
        (Node.balance_of node (Keys.address carol))

(* --- SPV ---------------------------------------------------------------------- *)

let test_spv_tracks_and_verifies () =
  let store = mk_store () in
  let tx = spend_premine store ~from_:alice ~to_:bob ~amount:(coin 5) ~fee:(coin 100) in
  let block1, r = mine_into store [ tx ] in
  expect_added r;
  for _ = 1 to 3 do
    let _, r = mine_into store [] in
    expect_added r
  done;
  let spv = Spv.create ~genesis_header:(Store.genesis store).Block.header in
  (match Spv.add_headers spv (Store.headers_from store ~from_:1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "tip synced" (Store.tip_height store) (Spv.tip_height spv);
  (* Prove the transfer's inclusion to the light client. *)
  let txid = Tx.txid tx in
  let index =
    match Store.find_tx store txid with
    | Some (_, i) -> i
    | None -> Alcotest.fail "tx not found"
  in
  let proof = Block.tx_proof block1 index in
  (match
     Spv.verify_inclusion spv ~header_hash:(Block.hash block1) ~txid ~proof ~depth:3
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Too deep a requirement fails. *)
  Alcotest.(check bool) "depth not met" true
    (Result.is_error
       (Spv.verify_inclusion spv ~header_hash:(Block.hash block1) ~txid ~proof ~depth:10));
  (* A foreign txid fails. *)
  Alcotest.(check bool) "wrong txid" true
    (Result.is_error
       (Spv.verify_inclusion spv ~header_hash:(Block.hash block1)
          ~txid:(Ac3_crypto.Sha256.digest "no") ~proof ~depth:1))

let test_spv_rejects_bogus_header () =
  let store = mk_store () in
  let spv = Spv.create ~genesis_header:(Store.genesis store).Block.header in
  let bogus =
    {
      (Store.genesis store).Block.header with
      Block.height = 1;
      parent = Block.hash (Store.genesis store);
      nonce = 12345L;
    }
  in
  (* Unless the forged nonce accidentally meets the target, this fails. *)
  match Spv.add_header spv bogus with
  | Error _ -> ()
  | Ok _ -> () (* possible at tiny difficulty; not an error of the SPV *)

(* --- Network ----------------------------------------------------------- *)

let test_network_partition_predicates () =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let net = Network.create ~engine ~rng () in
  Network.register net ~id:"a" (fun _ -> ());
  Network.register net ~id:"b" (fun _ -> ());
  Network.register net ~id:"c" (fun _ -> ());
  Alcotest.(check bool) "connected by default" true (Network.reachable net ~from:"a" ~to_:"b");
  Network.partition net [ [ "a" ]; [ "b" ] ];
  Alcotest.(check bool) "a-b cut" false (Network.reachable net ~from:"a" ~to_:"b");
  Alcotest.(check bool) "unlisted c cut from a" false (Network.reachable net ~from:"a" ~to_:"c");
  Network.heal net;
  Alcotest.(check bool) "healed" true (Network.reachable net ~from:"a" ~to_:"b");
  Network.isolate net "b";
  Alcotest.(check bool) "isolated" false (Network.reachable net ~from:"a" ~to_:"b");
  Network.reconnect net "b";
  Alcotest.(check bool) "reconnected" true (Network.reachable net ~from:"a" ~to_:"b")

let test_network_duplicate_endpoint () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~rng:(Rng.create 2) () in
  Network.register net ~id:"x" (fun _ -> ());
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Network.register: duplicate endpoint \"x\"") (fun () ->
      Network.register net ~id:"x" (fun _ -> ()))

let test_network_delivery_and_stats () =
  let engine = Engine.create () in
  let net = Network.create ~min_delay:0.1 ~max_delay:0.2 ~engine ~rng:(Rng.create 3) () in
  let got = ref 0 in
  Network.register net ~id:"a" (fun _ -> ());
  Network.register net ~id:"b" (fun _ -> incr got);
  let tx =
    Tx.coinbase ~chain:"t" ~height:0 ~miner_addr:(Keys.address alice) ~reward:Amount.zero
  in
  Network.send net ~from:"a" ~to_:"b" (Network.Tx_msg tx);
  Network.broadcast net ~from:"a" (Network.Tx_msg tx);
  ignore (Engine.run engine);
  Alcotest.(check int) "both delivered" 2 !got;
  let sent, delivered, dropped = Network.stats net in
  Alcotest.(check int) "sent" 2 sent;
  Alcotest.(check int) "delivered" 2 delivered;
  Alcotest.(check int) "dropped" 0 dropped

let mk_msg () =
  Network.Tx_msg
    (Tx.coinbase ~chain:"t" ~height:0 ~miner_addr:(Keys.address alice) ~reward:Amount.zero)

let test_network_partition_edge_cases () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~rng:(Rng.create 11) () in
  List.iter (fun id -> Network.register net ~id (fun _ -> ())) [ "a"; "b"; "c" ];
  (* A node listed in several groups lands in the last one listed. *)
  Network.partition net [ [ "a"; "b" ]; [ "b"; "c" ] ];
  Alcotest.(check bool) "b moved to last group" true (Network.reachable net ~from:"b" ~to_:"c");
  Alcotest.(check bool) "b cut from first group" false (Network.reachable net ~from:"a" ~to_:"b");
  (* Empty groups are inert: a partition of only-empty groups is full
     connectivity (everyone shares the implicit group). *)
  Network.partition net [ []; [] ];
  Alcotest.(check bool) "empty groups connect all" true (Network.reachable net ~from:"a" ~to_:"b");
  Alcotest.(check bool) "empty groups connect all 2" true (Network.reachable net ~from:"b" ~to_:"c");
  (* Heal-then-repartition starts from a clean table: only the new split
     applies, nothing lingers from the old one. *)
  Network.partition net [ [ "a" ]; [ "b" ] ];
  Network.heal net;
  Network.partition net [ [ "c" ] ];
  Alcotest.(check bool) "old split gone" true (Network.reachable net ~from:"a" ~to_:"b");
  Alcotest.(check bool) "new split applies" false (Network.reachable net ~from:"a" ~to_:"c")

let test_network_partition_drops_not_queues () =
  (* A send across a partition is dropped outright: healing later must
     not resurrect it. *)
  let engine = Engine.create () in
  let net = Network.create ~engine ~rng:(Rng.create 12) () in
  let got = ref 0 in
  Network.register net ~id:"a" (fun _ -> ());
  Network.register net ~id:"b" (fun _ -> incr got);
  Network.partition net [ [ "a" ]; [ "b" ] ];
  Network.send net ~from:"a" ~to_:"b" (mk_msg ());
  Network.heal net;
  ignore (Engine.run engine);
  Alcotest.(check int) "nothing delivered after heal" 0 !got;
  let _, _, dropped = Network.stats net in
  Alcotest.(check int) "dropped at send time" 1 dropped;
  (* Sanity: the healed link actually works for fresh sends. *)
  Network.send net ~from:"a" ~to_:"b" (mk_msg ());
  ignore (Engine.run engine);
  Alcotest.(check int) "fresh send delivered" 1 !got

let test_network_drop_probability () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~rng:(Rng.create 13) () in
  let got = ref 0 in
  Network.register net ~id:"a" (fun _ -> ());
  Network.register net ~id:"b" (fun _ -> incr got);
  Alcotest.check_raises "p out of range" (Invalid_argument "Network.set_drop_probability")
    (fun () -> Network.set_drop_probability net 1.5);
  Network.set_drop_probability net 1.0;
  for _ = 1 to 20 do
    Network.send net ~from:"a" ~to_:"b" (mk_msg ())
  done;
  ignore (Engine.run engine);
  Alcotest.(check int) "p=1 drops everything" 0 !got;
  Network.set_drop_probability net 0.5;
  for _ = 1 to 200 do
    Network.send net ~from:"a" ~to_:"b" (mk_msg ())
  done;
  ignore (Engine.run engine);
  Alcotest.(check bool) "p=0.5 drops about half" true (!got > 60 && !got < 140);
  Network.set_drop_probability net 0.0;
  Alcotest.(check (float 1e-9)) "probability readable" 0.0 (Network.drop_probability net)

let test_network_fault_hook () =
  let engine = Engine.create () in
  let net = Network.create ~min_delay:0.1 ~max_delay:0.2 ~engine ~rng:(Rng.create 14) () in
  let got = ref [] in
  Network.register net ~id:"a" (fun _ -> ());
  Network.register net ~id:"b" (fun _ -> got := ("b", Engine.now engine) :: !got);
  Network.register net ~id:"c" (fun _ -> got := ("c", Engine.now engine) :: !got);
  (* Drop everything towards b, slow everything towards c. *)
  Network.set_fault_hook net (fun ~from:_ ~to_ _msg ->
      if String.equal to_ "b" then Network.Drop_msg else Network.Delay_extra 10.0);
  Network.broadcast net ~from:"a" (mk_msg ());
  ignore (Engine.run engine);
  (match !got with
  | [ ("c", time) ] -> Alcotest.(check bool) "c delayed by hook" true (time > 10.0)
  | _ -> Alcotest.fail "expected exactly one delayed delivery to c");
  let _, delivered, dropped = Network.stats net in
  Alcotest.(check int) "one delivered" 1 delivered;
  Alcotest.(check int) "one dropped" 1 dropped;
  (* Clearing the hook restores normal delivery. *)
  Network.clear_fault_hook net;
  got := [];
  Network.send net ~from:"a" ~to_:"b" (mk_msg ());
  ignore (Engine.run engine);
  Alcotest.(check int) "b reachable again" 1 (List.length !got)

(* --- Params ----------------------------------------------------------------- *)

let test_params_presets_match_table1 () =
  Alcotest.(check (float 0.01)) "bitcoin 7 tps" 7.0 (Params.tps (Params.bitcoin ()));
  Alcotest.(check (float 0.01)) "ethereum 25 tps" 25.0 (Params.tps (Params.ethereum ()));
  Alcotest.(check (float 0.01)) "litecoin 56 tps" 56.0 (Params.tps (Params.litecoin ()));
  Alcotest.(check (float 0.01)) "bch 61 tps" 61.0 (Params.tps (Params.bitcoin_cash ()))

let test_params_validation () =
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Params.make: block_interval must be positive") (fun () ->
      ignore (Params.make "x" ~block_interval:0.0));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Params.make: block_capacity must be >= 1") (fun () ->
      ignore (Params.make "x" ~block_capacity:0))

let test_params_fee_schedule () =
  let p = Params.make "x" in
  Alcotest.(check int64) "transfer" (Amount.to_int64 p.Params.transfer_fee)
    (Amount.to_int64 (Params.required_fee p Tx.Transfer));
  Alcotest.(check int64) "deploy = fd" (Amount.to_int64 p.Params.deploy_fee)
    (Amount.to_int64
       (Params.required_fee p (Tx.Deploy { code_id = "c"; args = Value.Unit; deposit = 0L })));
  Alcotest.(check int64) "call = ffc" (Amount.to_int64 p.Params.call_fee)
    (Amount.to_int64
       (Params.required_fee p
          (Tx.Call { contract_id = "c"; fn = "f"; args = Value.Unit; deposit = 0L })))

(* --- Block header codec -------------------------------------------------------- *)

let test_block_header_roundtrip () =
  let store = mk_store () in
  let _, r = mine_into store [] in
  expect_added r;
  let h = (Store.tip store).Block.header in
  let h' = Codec.decode Block.decode_header (Codec.encode Block.encode_header h) in
  Alcotest.(check string) "hash stable" (Ac3_crypto.Hex.encode (Block.hash_header h))
    (Ac3_crypto.Hex.encode (Block.hash_header h'))

let test_block_tx_inclusion_proofs () =
  let store = mk_store () in
  let tx1 = spend_premine store ~from_:alice ~to_:bob ~amount:(coin 1) ~fee:(coin 100) in
  let tx2 = spend_premine store ~from_:bob ~to_:alice ~amount:(coin 2) ~fee:(coin 100) in
  let block, r = mine_into store [ tx1; tx2 ] in
  expect_added r;
  List.iteri
    (fun i tx ->
      let proof = Block.tx_proof block i in
      Alcotest.(check bool)
        (Printf.sprintf "tx %d included" i)
        true
        (Block.verify_tx_inclusion ~header:block.Block.header ~txid:(Tx.txid tx) proof))
    block.Block.txs;
  (* A txid from elsewhere fails against any proof. *)
  let proof = Block.tx_proof block 0 in
  Alcotest.(check bool) "foreign txid rejected" false
    (Block.verify_tx_inclusion ~header:block.Block.header
       ~txid:(Ac3_crypto.Sha256.digest "nope") proof)

(* --- Wallet contract paths -------------------------------------------------------- *)

let test_wallet_deploy_and_call () =
  let w = make_world ~seed:27 () in
  run_until_height w 2;
  let wallet = Wallet.create ~identity:alice ~node:w.nodes.(0) in
  match
    Wallet.deploy wallet ~code_id:"test-counter" ~args:(Value.Int 41L) ~deposit:Amount.zero
  with
  | Error e -> Alcotest.fail e
  | Ok (txid, cid) -> (
      ignore
        (Engine.run
           ~stop:(fun () -> Node.confirmations w.nodes.(0) txid >= 1)
           ~until:200_000.0 w.engine);
      match Wallet.call wallet ~contract_id:cid ~fn:"incr" ~args:Value.Unit () with
      | Error e -> Alcotest.fail e
      | Ok call_txid ->
          ignore
            (Engine.run
               ~stop:(fun () -> Node.confirmations w.nodes.(0) call_txid >= 1)
               ~until:200_000.0 w.engine);
          (match Node.contract w.nodes.(0) cid with
          | Some c -> Alcotest.(check bool) "state 42" true (Value.equal c.Ledger.state (Value.Int 42L))
          | None -> Alcotest.fail "contract missing"))

let () =
  Alcotest.run "chain"
    [
      ( "amount",
        [
          Alcotest.test_case "arithmetic" `Quick test_amount_arithmetic;
          Alcotest.test_case "negative rejected" `Quick test_amount_negative_rejected;
        ] );
      ( "value",
        [
          QCheck_alcotest.to_alcotest qcheck_value_roundtrip;
          Alcotest.test_case "record access" `Quick test_value_record_access;
        ] );
      ( "tx",
        [
          Alcotest.test_case "codec roundtrip" `Quick test_tx_roundtrip;
          Alcotest.test_case "signature binds body" `Quick test_tx_signature_binds_body;
          Alcotest.test_case "chain binding (no replay)" `Quick test_tx_chain_binding;
        ] );
      ( "pow",
        [
          Alcotest.test_case "target bits" `Quick test_pow_target_bits;
          Alcotest.test_case "mine and verify" `Quick test_pow_mine_and_verify;
          Alcotest.test_case "work monotone" `Quick test_pow_work_monotone;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "premine" `Quick test_ledger_premine;
          Alcotest.test_case "utxos and code ids sorted" `Quick test_ledger_utxos_sorted;
          Alcotest.test_case "transfer and conservation" `Quick test_ledger_transfer_and_conservation;
          Alcotest.test_case "double spend rejected" `Quick test_ledger_rejects_double_spend;
          Alcotest.test_case "theft rejected" `Quick test_ledger_rejects_theft;
          Alcotest.test_case "inflation rejected" `Quick test_ledger_rejects_inflation;
          Alcotest.test_case "fee floor" `Quick test_ledger_fee_floor;
          Alcotest.test_case "contract lifecycle" `Quick test_ledger_contract_lifecycle;
          Alcotest.test_case "vault deposit/payout" `Quick test_ledger_vault_payout;
        ] );
      ( "store",
        [
          Alcotest.test_case "duplicate and orphan" `Quick test_store_duplicate_and_orphan;
          Alcotest.test_case "bad pow rejected" `Quick test_store_rejects_bad_pow;
          Alcotest.test_case "reorg to heavier branch" `Quick test_store_reorg_switches_to_heavier_branch;
          Alcotest.test_case "reorg restores ledger" `Quick test_store_reorg_restores_ledger;
          Alcotest.test_case "confirmations" `Quick test_store_confirmations;
          Alcotest.test_case "headers_from" `Quick test_store_headers_from;
        ] );
      ( "mempool",
        [
          Alcotest.test_case "order and dedup" `Quick test_mempool_order_and_dedup;
          Alcotest.test_case "eviction protects settlement" `Quick
            test_mempool_eviction_protects_settlement;
          QCheck_alcotest.to_alcotest qcheck_mempool_candidates_arrival_order;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "network convergence" `Slow test_network_convergence;
          Alcotest.test_case "tx inclusion across nodes" `Slow test_network_tx_inclusion;
          Alcotest.test_case "partition forks and heals" `Slow test_network_partition_forks_and_heals;
          Alcotest.test_case "crash and recovery" `Slow test_node_crash_and_recovery;
        ] );
      ( "wallet",
        [
          Alcotest.test_case "insufficient funds" `Quick test_wallet_insufficient_funds;
          Alcotest.test_case "change output" `Slow test_wallet_change;
          Alcotest.test_case "pending outpoint not reused" `Slow
            test_wallet_pending_outpoint_not_reused;
          Alcotest.test_case "sibling wallets serialize" `Slow
            test_wallet_siblings_serialize_on_outpoint;
        ] );
      ( "spv",
        [
          Alcotest.test_case "tracks and verifies" `Quick test_spv_tracks_and_verifies;
          Alcotest.test_case "bogus header" `Quick test_spv_rejects_bogus_header;
        ] );
      ( "network-unit",
        [
          Alcotest.test_case "partition predicates" `Quick test_network_partition_predicates;
          Alcotest.test_case "duplicate endpoint" `Quick test_network_duplicate_endpoint;
          Alcotest.test_case "delivery and stats" `Quick test_network_delivery_and_stats;
          Alcotest.test_case "partition edge cases" `Quick test_network_partition_edge_cases;
          Alcotest.test_case "partition drops, not queues" `Quick
            test_network_partition_drops_not_queues;
          Alcotest.test_case "drop probability" `Quick test_network_drop_probability;
          Alcotest.test_case "fault hook" `Quick test_network_fault_hook;
        ] );
      ( "params",
        [
          Alcotest.test_case "presets match Table 1" `Quick test_params_presets_match_table1;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "fee schedule" `Quick test_params_fee_schedule;
        ] );
      ( "block",
        [
          Alcotest.test_case "header codec roundtrip" `Quick test_block_header_roundtrip;
          Alcotest.test_case "tx inclusion proofs" `Quick test_block_tx_inclusion_proofs;
        ] );
      ( "wallet-contracts",
        [ Alcotest.test_case "deploy and call via wallet" `Slow test_wallet_deploy_and_call ] );
    ]
