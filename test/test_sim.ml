(* Tests for the discrete-event simulation substrate. *)

open Ac3_sim

(* --- Rng -------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int64 a) in
  let ys = List.init 10 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let r = Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Rng.float r 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_exponential_mean () =
  let r = Rng.create 3 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Rng.exponential r ~mean:5.0
  done;
  let mean = !total /. float_of_int n in
  Alcotest.(check bool) "mean close to 5" true (abs_float (mean -. 5.0) < 0.25)

let test_rng_bernoulli_rate () =
  let r = Rng.create 4 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate close to 0.3" true (abs_float (rate -. 0.3) < 0.02)

let test_rng_bytes_length () =
  let r = Rng.create 5 in
  List.iter
    (fun n -> Alcotest.(check int) "length" n (Bytes.length (Rng.bytes r n)))
    [ 0; 1; 7; 8; 9; 32; 100 ]

let test_rng_shuffle_permutation () =
  let r = Rng.create 6 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* --- Heap ------------------------------------------------------------- *)

let test_heap_sorts () =
  let h = Heap.create compare in
  let input = [ 5; 3; 9; 1; 7; 2; 8; 0; 4; 6 ] in
  List.iter (Heap.push h) input;
  Alcotest.(check (list int)) "ascending" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (Heap.to_list h)

let test_heap_peek_pop () =
  let h = Heap.create compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "drained" None (Heap.pop h)

let test_heap_random_qcheck =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list int)
    (fun l ->
      let h = Heap.create compare in
      List.iter (Heap.push h) l;
      Heap.to_list h = List.sort compare l)

(* iter visits every element exactly once (in arbitrary order) and,
   unlike to_list, does not drain the heap. *)
let test_heap_iter_nondestructive () =
  let h = Heap.create compare in
  let input = [ 5; 3; 9; 1; 7 ] in
  List.iter (Heap.push h) input;
  let seen = ref [] in
  Heap.iter h (fun x -> seen := x :: !seen);
  Alcotest.(check (list int)) "visits all elements" (List.sort compare input)
    (List.sort compare !seen);
  Alcotest.(check int) "heap untouched" (List.length input) (Heap.length h);
  Alcotest.(check (list int)) "still drains sorted" (List.sort compare input) (Heap.to_list h)

let test_heap_iter_empty () =
  let h = Heap.create compare in
  Heap.iter h (fun (_ : int) -> Alcotest.fail "iter on empty heap called f");
  (* a popped-to-empty heap must not revisit stale slots *)
  Heap.push h 1;
  ignore (Heap.pop h);
  Heap.iter h (fun (_ : int) -> Alcotest.fail "iter after drain called f")

(* --- Engine ----------------------------------------------------------- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log));
  ignore (Engine.run e);
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "scheduling order at equal time" (List.init 10 Fun.id)
    (List.rev !log)

let test_engine_cancellation () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  ignore (Engine.run e);
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         times := Engine.now e :: !times;
         ignore (Engine.schedule e ~delay:1.5 (fun () -> times := Engine.now e :: !times))));
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "nested times" [ 1.0; 2.5 ] (List.rev !times)

let test_engine_horizon () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:5.0 (fun () -> incr fired));
  ignore (Engine.run ~until:2.0 e);
  Alcotest.(check int) "only first fired" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock at horizon" 2.0 (Engine.now e);
  ignore (Engine.run e);
  Alcotest.(check int) "second fires later" 2 !fired

let test_engine_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  ignore (Engine.run e);
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.schedule_at: time 0.500000 is in the past (now 1.000000)")
    (fun () -> ignore (Engine.schedule_at e ~time:0.5 (fun () -> ())))

let test_engine_repeating () =
  let e = Engine.create () in
  let count = ref 0 in
  let stop = Engine.schedule_repeating e ~first:1.0 ~every:1.0 (fun () -> incr count) in
  ignore (Engine.run ~until:5.5 e);
  stop ();
  ignore (Engine.run ~until:10.0 e);
  Alcotest.(check int) "fired until stopped" 5 !count

(* Cancelled events stay queued until their timestamp but are not
   pending work: pending_events must not count them, and running past
   them must not execute them. *)
let test_engine_pending_excludes_cancelled () =
  let e = Engine.create () in
  let fired = ref 0 in
  let h1 = Engine.schedule e ~delay:1.0 (fun () -> incr fired) in
  let _h2 = Engine.schedule e ~delay:2.0 (fun () -> incr fired) in
  let h3 = Engine.schedule e ~delay:3.0 (fun () -> incr fired) in
  Alcotest.(check int) "three pending" 3 (Engine.pending_events e);
  Engine.cancel h1;
  Alcotest.(check int) "cancel drops one" 2 (Engine.pending_events e);
  Engine.cancel h1;
  Alcotest.(check int) "double cancel is idempotent" 2 (Engine.pending_events e);
  Engine.cancel h3;
  Alcotest.(check int) "one live event left" 1 (Engine.pending_events e);
  Alcotest.(check int) "only the live event runs" 1 (Engine.run e);
  Alcotest.(check int) "callback count agrees" 1 !fired;
  Alcotest.(check int) "drained" 0 (Engine.pending_events e)

(* FIFO order among equal timestamps must survive cancelling events
   interleaved with the survivors. *)
let test_engine_fifo_ties_with_cancellation () =
  let e = Engine.create () in
  let log = ref [] in
  let handles =
    List.init 6 (fun i -> Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  in
  List.iteri (fun i h -> if i mod 2 = 1 then Engine.cancel h) handles;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "even slots fire in scheduling order" [ 0; 2; 4 ]
    (List.rev !log)

(* The clock advances to the horizon when the queue drains early — even
   when the queue was empty to begin with — so back-to-back run ~until
   calls see monotone time. *)
let test_engine_until_advances_drained_clock () =
  let e = Engine.create () in
  Alcotest.(check int) "nothing to run" 0 (Engine.run ~until:5.0 e);
  Alcotest.(check (float 1e-9)) "clock at horizon" 5.0 (Engine.now e);
  (* schedule_at a pre-horizon time is now in the past *)
  (match Engine.schedule_at e ~time:4.0 (fun () -> ()) with
  | _ -> Alcotest.fail "pre-horizon schedule_at should be rejected"
  | exception Invalid_argument _ -> ());
  ignore (Engine.run ~until:3.0 e);
  Alcotest.(check (float 1e-9)) "clock never rewinds" 5.0 (Engine.now e)

(* A stop condition ends the run without advancing to the horizon: the
   simulation may resume from where it actually stopped. *)
let test_engine_stop_keeps_clock () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> incr fired));
  let executed = Engine.run ~until:10.0 ~stop:(fun () -> !fired >= 1) e in
  Alcotest.(check int) "stopped after one event" 1 executed;
  Alcotest.(check (float 1e-9)) "clock stays at the stop point" 1.0 (Engine.now e);
  Alcotest.(check int) "second event still pending" 1 (Engine.pending_events e);
  ignore (Engine.run e);
  Alcotest.(check int) "resumes to completion" 2 !fired

let test_engine_schedule_boundaries () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  ignore (Engine.run e);
  (match Engine.schedule e ~delay:(-0.5) (fun () -> ()) with
  | _ -> Alcotest.fail "negative delay should be rejected"
  | exception Invalid_argument _ -> ());
  (* exactly-now is allowed: the event fires at the current instant *)
  let fired = ref false in
  ignore (Engine.schedule_at e ~time:(Engine.now e) (fun () -> fired := true));
  ignore (Engine.run e);
  Alcotest.(check bool) "time = now fires" true !fired;
  Alcotest.(check (float 1e-9)) "clock unchanged" 1.0 (Engine.now e)

(* --- Arena (lib/fast): slot recycling and stale handles ---------------- *)

module Arena = Ac3_fast.Arena

let test_arena_cancel_live () =
  let a = Arena.create () in
  let h = Arena.add a ~time:1.0 ~seq:0 (fun () -> ()) in
  Alcotest.(check bool) "not cancelled yet" false (Arena.is_cancelled a h);
  Arena.cancel a h;
  Alcotest.(check bool) "flagged" true (Arena.is_cancelled a h);
  Arena.cancel a h;
  Alcotest.(check bool) "idempotent" true (Arena.is_cancelled a h);
  Alcotest.(check int) "size counts cancelled events" 1 (Arena.size a);
  Alcotest.(check int) "live_count does not" 0 (Arena.live_count a)

let test_arena_stale_handle_inert () =
  let a = Arena.create ~capacity:2 () in
  let h1 = Arena.add a ~time:1.0 ~seq:0 (fun () -> ()) in
  let slot = Arena.pop_min a in
  Arena.release a slot;
  (* h1 is stale: its event was popped and the slot is on the free list. *)
  Alcotest.(check bool) "stale handle reads not-cancelled" false (Arena.is_cancelled a h1);
  (* The freed slot is recycled for the next event; the stale handle's
     generation no longer matches, so it cannot resurrect into cancelling
     the slot's new occupant. *)
  let h2 = Arena.add a ~time:2.0 ~seq:1 (fun () -> ()) in
  Arena.cancel a h1;
  Alcotest.(check bool) "stale cancel leaves the recycled slot alone" false
    (Arena.is_cancelled a h2);
  Alcotest.(check int) "new occupant still live" 1 (Arena.live_count a)

let test_arena_free_list_reuse () =
  (* Start at capacity 1 and run a thousand add/pop cycles with at most
     two events in flight: slots must recycle through the free list and
     pop order must stay (time, seq) throughout. *)
  let a = Arena.create ~capacity:1 () in
  let seq = ref 0 in
  let popped = ref [] in
  for round = 1 to 1000 do
    let t = float_of_int round in
    for _ = 1 to 2 do
      ignore (Arena.add a ~time:t ~seq:!seq (fun () -> ()) : Arena.handle);
      incr seq
    done;
    for _ = 1 to 2 do
      let s = Arena.pop_min a in
      popped := Arena.slot_time a s :: !popped;
      Arena.release a s
    done
  done;
  Alcotest.(check bool) "drained" true (Arena.is_empty a);
  let expect =
    List.concat_map
      (fun r ->
        let t = float_of_int (r + 1) in
        [ t; t ])
      (List.init 1000 Fun.id)
  in
  Alcotest.(check (list (float 1e-9))) "pop order over recycled slots" expect (List.rev !popped)

let test_arena_equal_time_tie_break_across_reuse () =
  (* Everything at one timestamp; an early event is cancelled, popped and
     its slot recycled for later sequence numbers. (time, seq) order must
     win over slot index. *)
  let a = Arena.create ~capacity:2 () in
  let log = ref [] in
  let ev k () = log := k :: !log in
  let h0 = Arena.add a ~time:5.0 ~seq:0 (ev 0) in
  ignore (Arena.add a ~time:5.0 ~seq:1 (ev 1) : Arena.handle);
  Arena.cancel a h0;
  let s = Arena.pop_min a in
  Alcotest.(check bool) "cancelled first-in pops first" true (Arena.slot_cancelled a s);
  Arena.release a s;
  ignore (Arena.add a ~time:5.0 ~seq:2 (ev 2) : Arena.handle);
  ignore (Arena.add a ~time:5.0 ~seq:3 (ev 3) : Arena.handle);
  while not (Arena.is_empty a) do
    let s = Arena.pop_min a in
    let cb = Arena.slot_callback a s in
    let cancelled = Arena.slot_cancelled a s in
    Arena.release a s;
    if not cancelled then cb ()
  done;
  Alcotest.(check (list int)) "seq order, not slot order" [ 1; 2; 3 ] (List.rev !log)

(* Regression caught by the differential harness (test_fast.ml): the
   handle's cancelled flag is sticky. The boxed-heap engine's handle WAS
   the event record, so [is_cancelled] stayed true after the cancelled
   event's timestamp passed; the arena reaps the slot at that point, and
   a generation-checked lookup alone would flip the answer to false. The
   engine keeps the bit on the handle so the historical observable
   survives slot recycling. *)
let test_engine_cancelled_flag_outlives_event () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  ignore (Engine.run e);
  Alcotest.(check bool) "did not fire" false !fired;
  Alcotest.(check bool) "flag survives past the event's timestamp" true (Engine.is_cancelled h);
  (* The reaped slot is recycled; a second cancel through the stale
     handle must not resurrect into cancelling the new occupant. *)
  let fired2 = ref false in
  let h2 = Engine.schedule e ~delay:1.0 (fun () -> fired2 := true) in
  Engine.cancel h;
  ignore (Engine.run e);
  Alcotest.(check bool) "recycled slot's event unaffected" true !fired2;
  Alcotest.(check bool) "new handle not cancelled" false (Engine.is_cancelled h2)

let test_engine_cancel_after_fire () =
  let e = Engine.create () in
  let h = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  ignore (Engine.run e);
  Alcotest.(check bool) "fired event reads not-cancelled" false (Engine.is_cancelled h);
  (* Historical semantics: cancel after the fact still flags the handle. *)
  Engine.cancel h;
  Alcotest.(check bool) "cancel after fire flags the handle" true (Engine.is_cancelled h);
  (* ... without leaking into whatever reuses the slot. *)
  let fired = ref false in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> fired := true) : Engine.handle);
  ignore (Engine.run e);
  Alcotest.(check bool) "later event on the recycled slot fires" true !fired

let test_engine_free_list_reuse_at_scale () =
  let e = Engine.create () in
  let fired = ref 0 in
  for _ = 1 to 500 do
    let hs =
      List.init 8 (fun i -> Engine.schedule e ~delay:(float_of_int i) (fun () -> incr fired))
    in
    List.iteri (fun i h -> if i mod 2 = 0 then Engine.cancel h) hs;
    ignore (Engine.run e)
  done;
  Alcotest.(check int) "half the events fired" (500 * 4) !fired;
  Alcotest.(check int) "executed counter agrees" (500 * 4) (Engine.executed_events e);
  Alcotest.(check int) "queue drained" 0 (Engine.pending_events e)

(* --- Trace ------------------------------------------------------------ *)

let test_trace_spans () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 "start";
  Trace.record tr ~time:2.0 "deploy";
  Trace.record tr ~time:4.0 "deploy";
  Trace.record tr ~time:9.0 "done";
  Alcotest.(check (option (float 1e-9))) "span" (Some 8.0) (Trace.span tr ~from_:"start" ~to_:"done");
  Alcotest.(check (option (float 1e-9)))
    "span_to_last" (Some 3.0)
    (Trace.span_to_last tr ~from_:"start" ~to_:"deploy");
  Alcotest.(check int) "find_all" 2 (List.length (Trace.find_all tr "deploy"));
  Alcotest.(check (option (float 1e-9))) "missing" None (Trace.span tr ~from_:"start" ~to_:"nope")

let test_trace_find_first_occurrence () =
  (* Records live in arrival order: [find]/[time_of] must return the
     *first* occurrence of a label, [last_time_of] the last — under
     repeated lookups (chaos runs make traces hot) and growth across the
     internal array-doubling boundary. *)
  let tr = Trace.create () in
  for i = 0 to 99 do
    Trace.record tr ~time:(float_of_int i) ~attrs:[ ("n", string_of_int i) ] "tick"
  done;
  Alcotest.(check int) "length" 100 (Trace.length tr);
  (match Trace.find tr "tick" with
  | None -> Alcotest.fail "find missed"
  | Some r ->
      Alcotest.(check (float 1e-9)) "first time" 0.0 r.Trace.time;
      Alcotest.(check (list (pair string string))) "first attrs" [ ("n", "0") ] r.Trace.attrs);
  Alcotest.(check (option (float 1e-9))) "time_of = first" (Some 0.0) (Trace.time_of tr "tick");
  Alcotest.(check (option (float 1e-9))) "last_time_of = last" (Some 99.0)
    (Trace.last_time_of tr "tick");
  (* Chronological order is preserved end to end. *)
  let times = List.map (fun r -> r.Trace.time) (Trace.records tr) in
  Alcotest.(check (list (float 1e-9))) "arrival order" (List.init 100 float_of_int) times

(* --- Stats ------------------------------------------------------------ *)

let test_stats_basic () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "variance" 2.5 (Stats.variance xs);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.minimum xs);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Stats.maximum xs);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs)

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p95" 95.0 (Stats.percentile xs 95.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.percentile xs 99.0)

let test_stats_histogram () =
  let xs = [ 0.5; 1.5; 1.6; 2.5; 9.9; -1.0; 10.0 ] in
  let h = Stats.histogram ~lo:0.0 ~hi:10.0 ~buckets:10 xs in
  Alcotest.(check int) "bucket 0" 1 h.Stats.counts.(0);
  Alcotest.(check int) "bucket 1" 2 h.Stats.counts.(1);
  Alcotest.(check int) "bucket 2" 1 h.Stats.counts.(2);
  (* The boundary sample x = hi lands in the closed top bucket instead of
     being silently dropped (regression). *)
  Alcotest.(check int) "bucket 9 includes x = hi" 2 h.Stats.counts.(9);
  Alcotest.(check int) "total inside" 6 (Array.fold_left ( + ) 0 h.Stats.counts);
  Alcotest.(check int) "underflow visible" 1 h.Stats.underflow;
  Alcotest.(check int) "overflow none" 0 h.Stats.overflow

let test_stats_histogram_overflow () =
  let h = Stats.histogram ~lo:0.0 ~hi:1.0 ~buckets:2 [ -0.1; 0.0; 0.5; 1.0; 1.1; nan ] in
  Alcotest.(check int) "underflow" 1 h.Stats.underflow;
  Alcotest.(check int) "overflow" 1 h.Stats.overflow;
  Alcotest.(check int) "nans dropped but counted" 1 h.Stats.dropped_nans;
  Alcotest.(check int) "in range" 3 (Array.fold_left ( + ) 0 h.Stats.counts)

(* Regression: a NaN in the sample list used to be sorted with
   polymorphic [compare], leaving the array in an unspecified order and
   the percentiles garbage. The policy is now drop-and-count. *)
let test_stats_nan_policy () =
  let xs = [ 5.0; nan; 1.0; 4.0; nan; 2.0; 3.0 ] in
  Alcotest.(check (float 1e-9)) "p50 ignores NaNs" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p99 ignores NaNs" 5.0 (Stats.percentile xs 99.0);
  Alcotest.(check (float 1e-9)) "min ignores NaNs" 1.0 (Stats.minimum xs);
  Alcotest.(check (float 1e-9)) "max ignores NaNs" 5.0 (Stats.maximum xs);
  let s = Stats.summarize xs in
  Alcotest.(check int) "valid count" 5 s.Stats.count;
  Alcotest.(check int) "dropped count" 2 s.Stats.nans;
  Alcotest.(check (float 1e-9)) "summary mean over valid" 3.0 s.Stats.mean;
  Alcotest.(check bool) "all-NaN -> NaN" true (Float.is_nan (Stats.percentile [ nan; nan ] 50.0));
  Alcotest.(check bool) "empty -> NaN" true (Float.is_nan (Stats.maximum []))

let test_stats_wilson () =
  let lo, hi = Stats.wilson_interval ~successes:0 ~trials:100 in
  Alcotest.(check (float 1e-9)) "zero successes -> lo 0" 0.0 lo;
  Alcotest.(check bool) "hi small but positive" true (hi > 0.0 && hi < 0.05);
  let lo2, hi2 = Stats.wilson_interval ~successes:50 ~trials:100 in
  Alcotest.(check bool) "centered" true (lo2 < 0.5 && 0.5 < hi2)

let qcheck_stats_mean_bounds =
  QCheck.Test.make ~name:"mean lies within min..max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let m = Stats.mean xs in
      m >= Stats.minimum xs -. 1e-9 && m <= Stats.maximum xs +. 1e-9)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
          Alcotest.test_case "bytes length" `Quick test_rng_bytes_length;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "peek/pop" `Quick test_heap_peek_pop;
          QCheck_alcotest.to_alcotest test_heap_random_qcheck;
          Alcotest.test_case "iter is non-destructive" `Quick test_heap_iter_nondestructive;
          Alcotest.test_case "iter skips empty and drained" `Quick test_heap_iter_empty;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_engine_fifo_ties;
          Alcotest.test_case "cancellation" `Quick test_engine_cancellation;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "horizon" `Quick test_engine_horizon;
          Alcotest.test_case "past rejected" `Quick test_engine_past_rejected;
          Alcotest.test_case "repeating" `Quick test_engine_repeating;
          Alcotest.test_case "pending excludes cancelled" `Quick
            test_engine_pending_excludes_cancelled;
          Alcotest.test_case "FIFO ties with cancellation" `Quick
            test_engine_fifo_ties_with_cancellation;
          Alcotest.test_case "until advances drained clock" `Quick
            test_engine_until_advances_drained_clock;
          Alcotest.test_case "stop keeps clock" `Quick test_engine_stop_keeps_clock;
          Alcotest.test_case "schedule boundaries" `Quick test_engine_schedule_boundaries;
          Alcotest.test_case "cancelled flag outlives the event" `Quick
            test_engine_cancelled_flag_outlives_event;
          Alcotest.test_case "cancel after fire" `Quick test_engine_cancel_after_fire;
          Alcotest.test_case "free-list reuse at scale" `Quick test_engine_free_list_reuse_at_scale;
        ] );
      ( "arena",
        [
          Alcotest.test_case "cancel live handle" `Quick test_arena_cancel_live;
          Alcotest.test_case "stale handle is inert" `Quick test_arena_stale_handle_inert;
          Alcotest.test_case "free-list reuse" `Quick test_arena_free_list_reuse;
          Alcotest.test_case "equal-time tie-break across reuse" `Quick
            test_arena_equal_time_tie_break_across_reuse;
        ] );
      ( "trace",
        [
          Alcotest.test_case "spans" `Quick test_trace_spans;
          Alcotest.test_case "find returns first occurrence" `Quick
            test_trace_find_first_occurrence;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "histogram overflow/underflow" `Quick test_stats_histogram_overflow;
          Alcotest.test_case "NaN drop policy" `Quick test_stats_nan_policy;
          Alcotest.test_case "wilson interval" `Quick test_stats_wilson;
          QCheck_alcotest.to_alcotest qcheck_stats_mean_bounds;
        ] );
    ]
