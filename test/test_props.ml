(* Cross-layer property and invariant tests:

   - value conservation of the ledger under random transfer workloads;
   - exact reorg reversibility (state digests agree after undo);
   - the Algorithm 1 state machine never leaves {P, RD, RF} and pays out
     exactly once, under random call sequences;
   - evidence verification is monotone in depth and binds every field;
   - WOTS/MSS signatures bind every bit of the message;
   - the paper's Figure 2/3 merge/split example, reproduced literally. *)

module Keys = Ac3_crypto.Keys
module Sha256 = Ac3_crypto.Sha256
module Rng = Ac3_sim.Rng
open Ac3_chain

let coin n = Amount.of_int n

(* --- Harness: direct-mined single chain --------------------------------- *)

let ids = Array.init 4 (fun i -> Keys.create (Printf.sprintf "props-id%d" i))

(* Random-workload stores skip signature verification (the crypto layer
   has its own tests); MSS identities would otherwise exhaust after a few
   hundred generated transfers. *)
let mk_store ?(premine_each = 10_000_000) () =
  let premine = Array.to_list (Array.map (fun id -> (Keys.address id, coin premine_each)) ids) in
  let params =
    Params.make "props" ~pow_bits:4 ~confirm_depth:2 ~verify_signatures:false ~premine
  in
  Store.create ~params ~registry:(Ac3_contract.Registry.standard ())

let mine_into ?(miner = "props-miner") store txs =
  let parent = Store.tip store in
  let p = Store.params store in
  let height = parent.Block.header.Block.height + 1 in
  let fees = Amount.sum (List.map (fun (tx : Tx.t) -> tx.Tx.fee) txs) in
  let coinbase =
    Tx.coinbase ~chain:p.Params.chain_id ~height
      ~miner_addr:(Keys.address (Keys.create miner))
      ~reward:Amount.(p.Params.block_reward + fees)
  in
  let block =
    Block.mine ~chain:p.Params.chain_id ~height ~parent:(Block.hash parent)
      ~time:(float_of_int height)
      ~target:(Pow.target_of_bits p.Params.pow_bits)
      ~txs:(coinbase :: txs)
  in
  (block, Store.add_block store block)

(* Build one random valid transfer on the current ledger, if possible. *)
let random_transfer rng store =
  let ledger = Store.ledger store in
  let from_ = ids.(Rng.int rng (Array.length ids)) in
  let to_ = ids.(Rng.int rng (Array.length ids)) in
  match Ledger.utxos_of ledger (Keys.address from_) with
  | [] -> None
  | utxos ->
      let op, (o : Tx.output) = List.nth utxos (Rng.int rng (List.length utxos)) in
      let p = Store.params store in
      let fee = p.Params.transfer_fee in
      if Amount.compare o.amount Amount.(fee + coin 2) < 0 then None
      else begin
        let pay = Amount.of_int64 (Int64.of_int (1 + Rng.int rng 1000)) in
        let pay = if Amount.compare pay Amount.(o.amount - fee) > 0 then Amount.(o.amount - fee) else pay in
        let change = Amount.(o.amount - fee - pay) in
        let outputs =
          ({ addr = Keys.address to_; amount = pay } : Tx.output)
          ::
          (if Amount.is_zero change then []
           else [ ({ addr = Keys.address from_; amount = change } : Tx.output) ])
        in
        Some
          (Tx.make_unsigned ~chain:"props" ~inputs:[ (op, Keys.public from_) ] ~outputs ~fee
             ~nonce:(Rng.int64 rng) ())
      end

(* --- Conservation under random workloads --------------------------------- *)

let qcheck_conservation =
  QCheck.Test.make ~name:"supply grows by exactly one block reward per block" ~count:15
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let store = mk_store () in
      let ledger = Store.ledger store in
      let p = Store.params store in
      let ok = ref true in
      for _ = 1 to 8 do
        let supply_before = Ledger.total_supply ledger in
        let txs = List.filter_map (fun _ -> random_transfer rng store) (List.init 5 Fun.id) in
        let txs = Ledger.select_valid ledger ~block_height:(Store.tip_height store + 1) ~block_time:0.0 txs in
        (match mine_into store txs with
        | _, Store.Added _ -> ()
        | _, _ -> ok := false);
        let expected = Amount.(supply_before + p.Params.block_reward) in
        if not (Amount.equal (Ledger.total_supply ledger) expected) then ok := false
      done;
      !ok)

let qcheck_no_negative_balances =
  QCheck.Test.make ~name:"balances never go negative; utxo owners well-formed" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create (seed + 5000) in
      let store = mk_store () in
      for _ = 1 to 6 do
        let txs = List.filter_map (fun _ -> random_transfer rng store) (List.init 4 Fun.id) in
        let txs =
          Ledger.select_valid (Store.ledger store)
            ~block_height:(Store.tip_height store + 1) ~block_time:0.0 txs
        in
        ignore (mine_into store txs)
      done;
      Array.for_all
        (fun id -> Amount.compare (Ledger.balance_of (Store.ledger store) (Keys.address id)) Amount.zero >= 0)
        ids)

(* --- Reorg reversibility ---------------------------------------------------- *)

let qcheck_reorg_reversible =
  QCheck.Test.make ~name:"reorg away and back restores the exact state digest" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create (seed + 9000) in
      (* Store A advances 2 blocks with random txs; snapshot digest. An
         independent store B (same genesis) builds a 3-block branch, which
         A adopts (reorg). Then A extends the ORIGINAL branch by 2 more
         blocks mined on store C (a replica of A's original chain),
         making it heaviest again; the state must replay consistently. *)
      let store_a = mk_store () in
      let store_c = mk_store () in
      let sync tx_block = ignore (Store.add_block store_c tx_block) in
      for _ = 1 to 2 do
        let txs = List.filter_map (fun _ -> random_transfer rng store_a) (List.init 3 Fun.id) in
        let txs =
          Ledger.select_valid (Store.ledger store_a)
            ~block_height:(Store.tip_height store_a + 1) ~block_time:0.0 txs
        in
        let block, r = mine_into store_a txs in
        (match r with Store.Added _ -> () | _ -> failwith "original branch rejected");
        sync block
      done;
      let digest_original = Ledger.state_digest (Store.ledger store_a) in
      let tip_original = Store.tip_hash store_a in
      (* Competing branch from genesis on a fresh store. *)
      let store_b = mk_store () in
      for _ = 1 to 3 do
        let _, r = mine_into ~miner:"props-branch-b" store_b [] in
        match r with Store.Added _ -> () | _ -> failwith "branch b rejected"
      done;
      (* Feed branch B to A: must reorg. *)
      for h = 1 to 3 do
        match Store.block_at_height store_b h with
        | Some b -> ignore (Store.add_block store_a b)
        | None -> failwith "missing branch b block"
      done;
      let reorged = not (String.equal (Store.tip_hash store_a) tip_original) in
      (* Extend the original branch to 4 blocks via store C and feed to A. *)
      for _ = 1 to 2 do
        let block, r = mine_into ~miner:"props-extender" store_c [] in
        (match r with Store.Added _ -> () | _ -> failwith "extension rejected");
        ignore (Store.add_block store_a block)
      done;
      (* A must now be back on the original branch, with state = original
         state evolved by two empty blocks; undoing those two via digest
         of store C must agree with A. *)
      let back =
        Store.is_active store_a tip_original
        && String.equal
             (Ledger.state_digest (Store.ledger store_a))
             (Ledger.state_digest (Store.ledger store_c))
      in
      ignore digest_original;
      reorged && back)

(* --- The swap-contract state machine ------------------------------------------ *)

(* Drive Htlc.Code directly with fabricated contexts: no chain, pure
   state-machine checking. *)
let qcheck_swap_state_machine =
  let module H = Ac3_contract.Htlc in
  let module CI = Contract_iface in
  QCheck.Test.make ~name:"Algorithm 1: single transition, single payout, P->RD/RF only"
    ~count:200
    QCheck.(pair (int_range 0 1000) (list_of_size Gen.(1 -- 12) (int_range 0 3)))
    (fun (seed, actions) ->
      let rng = Rng.create (seed + 777) in
      let secret = Printf.sprintf "secret-%d" seed in
      let recipient = Keys.create "props-htlc-recipient" in
      let sender = Keys.create "props-htlc-sender" in
      let timelock = 10.0 in
      let ctx time : CI.ctx =
        {
          chain_id = "props";
          block_height = 1;
          block_time = time;
          txid = Sha256.digest (string_of_int (Rng.int rng 1_000_000));
          sender = Keys.public sender;
          value = Amount.zero;
          contract_id = Sha256.digest "cid";
          balance = coin 1000;
        }
      in
      let init_ctx = { (ctx 0.0) with CI.value = coin 1000 } in
      match
        H.Code.init init_ctx
          (H.args ~recipient_pk:(Keys.public recipient)
             ~hashlock:(H.hashlock_of_secret secret) ~timelock)
      with
      | Error _ -> false
      | Ok state0 ->
          let module ST = Ac3_contract.Swap_template in
          let state = ref state0 in
          let payouts = ref [] in
          let ok = ref true in
          List.iter
            (fun action ->
              let fn, args, time =
                match action with
                | 0 -> ("redeem", H.redeem_args ~secret, 5.0)
                | 1 -> ("redeem", H.redeem_args ~secret:"wrong", 5.0)
                | 2 -> ("refund", H.refund_args, 20.0) (* past timelock *)
                | _ -> ("refund", H.refund_args, 5.0) (* too early *)
              in
              match H.Code.call (ctx time) ~state:!state ~fn ~args with
              | Ok outcome ->
                  state := outcome.CI.state;
                  payouts := outcome.CI.payouts @ !payouts
              | Error _ -> ())
            actions;
          (* Invariants: at most one payout; terminal states absorbing;
             status well-formed. *)
          let status_ok =
            ST.is_published !state || ST.is_redeemed !state || ST.is_refunded !state
          in
          let payout_ok =
            match !payouts with
            | [] -> ST.is_published !state
            | [ (addr, amount) ] ->
                Amount.equal amount (coin 1000)
                && ((ST.is_redeemed !state && String.equal addr (Keys.address recipient))
                   || (ST.is_refunded !state && String.equal addr (Keys.address sender)))
            | _ -> false
          in
          !ok && status_ok && payout_ok)

(* --- Static verification agrees with dynamic execution --------------------------- *)

(* For random single-leader graphs (a ring backbone, optionally a chord),
   the static timelock pass accepts exactly when a crash-free
   [Herlihy.execute] run commits atomically: executable graphs pass the
   verifier and commit; graphs that are cyclic without the leader fail
   the verifier and are refused by the protocol. The ring backbone
   guarantees every vertex has a directed path to the leader (no T001),
   and delta is generous relative to the chains, so the only sources of
   disagreement would be genuine verifier or protocol bugs. *)
let qcheck_static_matches_dynamic =
  let module S = Ac3_core.Scenarios in
  let module U = Ac3_core.Universe in
  let module H = Ac3_core.Herlihy in
  let module V = Ac3_verify.Verify in
  let module D = Ac3_verify.Diagnostic in
  let module Ac2t = Ac3_contract.Ac2t in
  let runs = ref 0 in
  QCheck.Test.make ~name:"static timelock verdict = crash-free Herlihy outcome" ~count:6
    QCheck.(triple (int_range 3 4) (int_range 0 2) (int_range 0 97))
    (fun (n, kind, salt) ->
      (* QCheck's int shrinker can wander outside int_range bounds;
         treat such inputs as vacuously true. *)
      if n < 3 || n > 4 || kind < 0 || kind > 2 || salt < 0 then true
      else begin
      incr runs;
      (* Fresh MSS identities per run, including shrink retries. *)
      let ns = Printf.sprintf "sv%d-%d-%d-%d" n kind salt !runs in
      let ids' = S.identities ~ns n in
      let chains = List.init n (Printf.sprintf "chain%d") in
      let u, participants =
        S.make_universe ~seed:(salt + (31 * n) + kind) ~block_interval:5.0 ~confirm_depth:3
          ~chains ids' ()
      in
      U.run_until u 50.0;
      let ring = Ac2t.edges (S.ring_graph ~chains ids' ~timestamp:(U.now u)) in
      let pk i = Keys.public (List.nth ids' i) in
      let i = salt mod (n - 2) in
      let j = i + 2 in
      let chord =
        match kind with
        | 0 -> [] (* plain ring: executable *)
        | 1 ->
            (* forward chord skipping a vertex: still acyclic without the
               leader, so still executable *)
            [
              {
                Ac2t.from_pk = pk i;
                to_pk = pk j;
                amount = coin (7700 + salt);
                chain = List.nth chains i;
              };
            ]
        | _ ->
            (* back chord between non-leader vertices: a cycle that
               survives removing the leader — not executable (Fig 7a) *)
            let i' = max 1 i in
            [
              {
                Ac2t.from_pk = pk j;
                to_pk = pk i';
                amount = coin (8800 + salt);
                chain = List.nth chains j;
              };
            ]
      in
      let graph = Ac2t.create ~edges:(ring @ chord) ~timestamp:(U.now u) in
      let delta = 2.5 *. U.max_delta u in
      (* Commit completes within ~100 virtual seconds; the timeout only
         bounds the refund path of a (bug-indicating) aborted run. *)
      let config = { (H.default_config ~delta) with H.timeout = 5000.0 } in
      let static_ok =
        not
          (D.has_errors
             (V.herlihy_preflight ~graph ~delta ~timelock_slack:config.H.timelock_slack
                ~start_time:(U.now u)))
      in
      let dynamic_ok =
        match H.execute u ~config ~graph ~participants () with
        | Ok r -> r.H.committed && r.H.atomic
        | Error _ -> false
      in
      static_ok = dynamic_ok
      end)

(* --- Evidence: depth monotonicity ------------------------------------------------ *)

let qcheck_evidence_depth_monotone =
  let module Ev = Ac3_contract.Evidence in
  QCheck.Test.make ~name:"evidence verifies iff depth <= burial" ~count:10
    QCheck.(int_range 2 8)
    (fun extra_blocks ->
      let store = mk_store () in
      let rng = Rng.create extra_blocks in
      let tx = Option.get (random_transfer rng store) in
      let _, r = mine_into store [ tx ] in
      (match r with Store.Added _ -> () | _ -> failwith "rejected");
      for _ = 1 to extra_blocks do
        ignore (mine_into store [])
      done;
      let checkpoint = (Store.genesis store).Block.header in
      match Ev.build ~store ~checkpoint ~txid:(Tx.txid tx) with
      | Error _ -> false
      | Ok ev ->
          List.for_all
            (fun depth ->
              let verdict = Result.is_ok (Ev.verify ~checkpoint ~depth ev) in
              if depth <= extra_blocks then verdict else not verdict)
            (List.init (extra_blocks + 3) Fun.id))

(* --- Signatures bind every bit ------------------------------------------------------ *)

let qcheck_wots_bit_binding =
  QCheck.Test.make ~name:"WOTS rejects any single-bit message flip" ~count:30
    QCheck.(pair small_string (int_range 0 255))
    (fun (msg, bit) ->
      let msg = msg ^ "x" in
      let sk = Ac3_crypto.Wots.generate ~seed:"props-wots" ~tag:"t" in
      let pk = Ac3_crypto.Wots.public sk in
      let s = Ac3_crypto.Wots.sign sk msg in
      let i = bit mod (8 * String.length msg) in
      let flipped = Bytes.of_string msg in
      Bytes.set flipped (i / 8) (Char.chr (Char.code msg.[i / 8] lxor (1 lsl (i mod 8))));
      let flipped = Bytes.to_string flipped in
      Ac3_crypto.Wots.verify ~tag:"t" pk msg s
      && not (Ac3_crypto.Wots.verify ~tag:"t" pk flipped s))

(* --- Paper Figures 2 and 3: TX1 merges, TX2 splits ----------------------------------- *)

let test_fig2_merge_split () =
  (* Alice owns three assets (0.5, 1.0, 0.3 "bitcoins" at 10^6 units);
     TX1 merges them into 1.8 to Bob; TX2 splits Bob's 1.8 into 0.3 to
     Alice and 1.5 to Bob — exactly the paper's example, with zero fees
     (the paper's no-fee assumption). *)
  let alice = Keys.create "fig2-alice" and bob = Keys.create "fig2-bob" in
  let unit_ = 1_000_000 in
  let premine =
    [
      (Keys.address alice, coin (5 * unit_ / 10));
      (Keys.address alice, coin unit_);
      (Keys.address alice, coin (3 * unit_ / 10));
    ]
  in
  let params =
    Params.make "fig2" ~pow_bits:4 ~confirm_depth:1 ~transfer_fee:Amount.zero ~premine
  in
  let store = Store.create ~params ~registry:(Ac3_contract.Registry.standard ()) in
  let ledger = Store.ledger store in
  let utxos = Ledger.utxos_of ledger (Keys.address alice) in
  Alcotest.(check int) "alice has three assets" 3 (List.length utxos);
  (* TX1: merge all three into one output to Bob. *)
  let tx1 =
    Tx.make ~chain:"fig2"
      ~inputs:(List.map (fun (op, _) -> (op, alice)) utxos)
      ~outputs:[ { addr = Keys.address bob; amount = coin (18 * unit_ / 10) } ]
      ~fee:Amount.zero ~nonce:1L ()
  in
  (match mine_into ~miner:"fig2-miner" store [ tx1 ] with
  | _, Store.Added _ -> ()
  | _, Store.Invalid e -> Alcotest.fail e
  | _ -> Alcotest.fail "TX1 not added");
  Alcotest.(check int64) "bob owns 1.8" (Int64.of_int (18 * unit_ / 10))
    (Ledger.balance_of ledger (Keys.address bob));
  Alcotest.(check int64) "alice owns 0" 0L (Ledger.balance_of ledger (Keys.address alice));
  (* TX2: split Bob's 1.8 into 0.3 (Alice) + 1.5 (Bob). *)
  let op_bob, _ = List.hd (Ledger.utxos_of ledger (Keys.address bob)) in
  let tx2 =
    Tx.make ~chain:"fig2" ~inputs:[ (op_bob, bob) ]
      ~outputs:
        [
          { addr = Keys.address alice; amount = coin (3 * unit_ / 10) };
          { addr = Keys.address bob; amount = coin (15 * unit_ / 10) };
        ]
      ~fee:Amount.zero ~nonce:2L ()
  in
  (match mine_into ~miner:"fig2-miner" store [ tx2 ] with
  | _, Store.Added _ -> ()
  | _ -> Alcotest.fail "TX2 not added");
  Alcotest.(check int64) "alice 0.3" (Int64.of_int (3 * unit_ / 10))
    (Ledger.balance_of ledger (Keys.address alice));
  Alcotest.(check int64) "bob 1.5" (Int64.of_int (15 * unit_ / 10))
    (Ledger.balance_of ledger (Keys.address bob));
  (* Figure 3's point: Bob could only spend the asset after TX1 put it in
     a previous block — a double spend of the merged asset must fail. *)
  let tx2_again =
    Tx.make ~chain:"fig2" ~inputs:[ (op_bob, bob) ]
      ~outputs:[ { addr = Keys.address bob; amount = coin (18 * unit_ / 10) } ]
      ~fee:Amount.zero ~nonce:3L ()
  in
  match mine_into ~miner:"fig2-miner" store [ tx2_again ] with
  | _, Store.Invalid _ -> ()
  | _ -> Alcotest.fail "double spend of merged asset accepted"

(* --- Block capacity enforcement ----------------------------------------------------- *)

let test_block_capacity () =
  let alice = Keys.create "cap-alice" in
  let premine = List.init 10 (fun _ -> (Keys.address alice, coin 1000)) in
  let params = Params.make "cap" ~pow_bits:4 ~block_capacity:3 ~transfer_fee:Amount.zero ~premine in
  let store = Store.create ~params ~registry:(Ac3_contract.Registry.standard ()) in
  let cb_txid = Tx.txid (List.hd (Store.genesis store).Block.txs) in
  let txs =
    List.init 5 (fun i ->
        Tx.make ~chain:"cap"
          ~inputs:[ (Outpoint.create ~txid:cb_txid ~index:i, alice) ]
          ~outputs:[ { addr = Keys.address alice; amount = coin 1000 } ]
          ~fee:Amount.zero ~nonce:(Int64.of_int i) ())
  in
  (* A block with 5 txs exceeds capacity 3 and must be rejected. *)
  let parent = Store.tip store in
  let coinbase =
    Tx.coinbase ~chain:"cap" ~height:1 ~miner_addr:(Keys.address alice)
      ~reward:params.Params.block_reward
  in
  let block =
    Block.mine ~chain:"cap" ~height:1 ~parent:(Block.hash parent) ~time:1.0
      ~target:(Pow.target_of_bits params.Params.pow_bits)
      ~txs:(coinbase :: txs)
  in
  match Store.add_block store block with
  | Store.Invalid reason ->
      Alcotest.(check bool) "mentions capacity" true
        (Astring.String.is_infix ~affix:"capacity" reason)
  | _ -> Alcotest.fail "over-capacity block accepted"

(* --- Coinbase reward ceiling --------------------------------------------------------- *)

let test_coinbase_ceiling () =
  let store = mk_store () in
  let p = Store.params store in
  let parent = Store.tip store in
  let coinbase =
    Tx.coinbase ~chain:"props" ~height:1
      ~miner_addr:(Keys.address ids.(0))
      ~reward:Amount.(p.Params.block_reward + coin 1)
  in
  let block =
    Block.mine ~chain:"props" ~height:1 ~parent:(Block.hash parent) ~time:1.0
      ~target:(Pow.target_of_bits p.Params.pow_bits) ~txs:[ coinbase ]
  in
  match Store.add_block store block with
  | Store.Invalid _ -> ()
  | _ -> Alcotest.fail "overpaying coinbase accepted"

let () =
  Alcotest.run "props"
    [
      ( "ledger-invariants",
        [
          QCheck_alcotest.to_alcotest qcheck_conservation;
          QCheck_alcotest.to_alcotest qcheck_no_negative_balances;
          QCheck_alcotest.to_alcotest qcheck_reorg_reversible;
        ] );
      ( "contract-invariants",
        [
          QCheck_alcotest.to_alcotest qcheck_swap_state_machine;
          QCheck_alcotest.to_alcotest qcheck_evidence_depth_monotone;
        ] );
      ( "verify-invariants",
        [ QCheck_alcotest.to_alcotest qcheck_static_matches_dynamic ] );
      ("signature-invariants", [ QCheck_alcotest.to_alcotest qcheck_wots_bit_binding ]);
      ( "paper-model",
        [
          Alcotest.test_case "Fig 2/3: TX1 merge, TX2 split, no double spend" `Quick
            test_fig2_merge_split;
          Alcotest.test_case "block capacity enforced" `Quick test_block_capacity;
          Alcotest.test_case "coinbase ceiling enforced" `Quick test_coinbase_ceiling;
        ] );
    ]
