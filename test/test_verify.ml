(* Static-verifier tests: graph lints, the timelock-order analysis
   (including the paper's Sec 3 violation reproduced without running the
   simulator), bounded exhaustive state-machine exploration of the three
   contract codes, and the ?verify preflight hooks on the protocol entry
   points. *)

module Keys = Ac3_crypto.Keys
module Ac2t = Ac3_contract.Ac2t
module Amount = Ac3_chain.Amount
module D = Ac3_verify.Diagnostic
module Graph_lint = Ac3_verify.Graph_lint
module Timelock = Ac3_verify.Timelock
module State_machine = Ac3_verify.State_machine
module Probes = Ac3_verify.Probes
module V = Ac3_verify.Verify
open Ac3_core

let coin n = Amount.of_int n

let alice = Keys.create "verify-test-alice"

let bob = Keys.create "verify-test-bob"

let edge ?(amount = coin 100) from_ to_ chain =
  { Ac2t.from_pk = Keys.public from_; to_pk = Keys.public to_; amount; chain }

let ids n = Scenarios.identities ~ns:"tv" n

let has rule ds = D.by_rule rule ds <> []

let error_rules ds = List.sort_uniq String.compare (List.map (fun d -> d.D.rule) (D.errors ds))

(* Scenario graphs, built statically (no universe). *)
let two_party () = Scenarios.two_party_graph ~chain1:"btc" ~chain2:"eth" (ids 2) ~timestamp:1.0

let ring n =
  Scenarios.ring_graph ~chains:(List.init n (Printf.sprintf "chain%d")) (ids n) ~timestamp:1.0

let cyclic () = Scenarios.cyclic_graph ~chains:[ "c1"; "c2"; "c3" ] (ids 3) ~timestamp:1.0

let disconnected () =
  Scenarios.disconnected_graph ~chains:[ "c1"; "c2"; "c3"; "c4" ] (ids 4) ~timestamp:1.0

let supply_chain () =
  Scenarios.supply_chain_graph ~chains:[ "payments"; "titles"; "freight" ] (ids 4) ~timestamp:1.0

(* --- Pass 1: graph lints ------------------------------------------------- *)

let test_lint_edges_structural () =
  Alcotest.(check (list string)) "empty graph" [ "G001-empty-graph" ] (error_rules (Graph_lint.lint_edges []));
  Alcotest.(check (list string)) "self edge" [ "G002-self-edge" ]
    (error_rules (Graph_lint.lint_edges [ edge alice alice "btc" ]));
  Alcotest.(check (list string)) "zero amount" [ "G003-zero-amount" ]
    (error_rules (Graph_lint.lint_edges [ edge ~amount:Amount.zero alice bob "btc" ]));
  Alcotest.(check (list string)) "duplicate edge" [ "G004-duplicate-edge" ]
    (error_rules (Graph_lint.lint_edges [ edge alice bob "btc"; edge alice bob "btc" ]));
  (* Same endpoints on distinct chains is legitimate. *)
  Alcotest.(check (list string)) "well-formed pair" []
    (error_rules (Graph_lint.lint_edges [ edge alice bob "btc"; edge bob alice "eth" ]))

let test_lint_profiles () =
  (* Fig 7b: fatal for a single-leader protocol, fine for AC3WN. *)
  let d = disconnected () in
  Alcotest.(check bool) "disconnected fails single-leader" true
    (has "G005-disconnected" (D.errors (Graph_lint.lint ~profile:Graph_lint.Single_leader d)));
  let witness_view = Graph_lint.lint ~profile:Graph_lint.Witness d in
  Alcotest.(check bool) "disconnected passes witness" false (D.has_errors witness_view);
  Alcotest.(check bool) "but is still reported" true (has "G005-disconnected" witness_view);
  (* Fig 7a: cyclic for every choice of leader. *)
  let c = cyclic () in
  Alcotest.(check bool) "cyclic fails single-leader" true
    (has "G006-leader-cycle" (D.errors (Graph_lint.lint ~profile:Graph_lint.Single_leader c)));
  Alcotest.(check bool) "cyclic passes witness" false
    (D.has_errors (Graph_lint.lint ~profile:Graph_lint.Witness c))

let test_lint_conservation_and_capacity () =
  (* A single transfer: the source pays and never receives. *)
  let g = Ac2t.create ~edges:[ edge alice bob "btc" ] ~timestamp:1.0 in
  let ds = Graph_lint.lint g in
  Alcotest.(check bool) "net payer flagged" true (has "G007-net-payer" ds);
  Alcotest.(check int) "one delta line per participant" 2
    (List.length (D.by_rule "G009-value-delta" ds));
  (* Three contracts on one chain against a capacity of two. *)
  let carol = Keys.create "verify-test-carol" in
  let g3 =
    Ac2t.create
      ~edges:
        [
          edge alice bob "btc";
          edge ~amount:(coin 200) bob carol "btc";
          edge ~amount:(coin 300) carol alice "btc";
        ]
      ~timestamp:1.0
  in
  Alcotest.(check bool) "chain overload" true
    (has "G008-chain-overload" (Graph_lint.lint ~block_capacity:2 g3));
  Alcotest.(check bool) "capacity ok when it fits" false
    (has "G008-chain-overload" (Graph_lint.lint ~block_capacity:4 g3))

(* Regression for the D001 fix in capacity_lints: overload warnings
   come out in chain order, not hash-bucket order. *)
let test_capacity_order_deterministic () =
  let carol = Keys.create "verify-test-carol" in
  let dave = Keys.create "verify-test-dave" in
  let edges =
    List.concat_map
      (fun chain -> [ edge alice bob chain; edge ~amount:(coin 200) carol dave chain ])
      [ "zeta"; "mid"; "alpha" ]
  in
  let g = Ac2t.create ~edges ~timestamp:1.0 in
  let locations =
    List.map
      (fun d -> d.D.location)
      (D.by_rule "G008-chain-overload" (Graph_lint.lint ~block_capacity:1 g))
  in
  Alcotest.(check (list string))
    "overloaded chains reported in sorted order"
    [ "chain alpha"; "chain mid"; "chain zeta" ]
    locations

(* --- Pass 2: timelock order ----------------------------------------------- *)

let test_timelock_assign_matches_herlihy () =
  (* Two-party swap, delta 10, slack 2: Diam = 2; the leader's outgoing
     contract (depth 0) expires at 10*(4+2) = 60, the follower's (depth 1)
     at 10*(4-1+2) = 50 — exactly Herlihy's t1 > t2 staircase. *)
  match Timelock.assign ~graph:(two_party ()) ~delta:10.0 ~timelock_slack:2.0 ~start_time:0.0 with
  | Error e -> Alcotest.fail e
  | Ok assignments ->
      Alcotest.(check (list int)) "depths" [ 0; 1 ]
        (List.map (fun a -> a.Timelock.depth) assignments);
      Alcotest.(check (list (float 1e-9))) "expiries" [ 60.0; 50.0 ]
        (List.map (fun a -> a.Timelock.expiry) assignments)

let test_timelock_default_config_passes () =
  List.iter
    (fun (name, graph) ->
      let ds = V.herlihy_preflight ~graph ~delta:15.0 ~timelock_slack:2.0 ~start_time:0.0 in
      Alcotest.(check (list string)) (name ^ " has no errors") [] (error_rules ds);
      Alcotest.(check bool) (name ^ " reports its margin") true (has "T003-min-slack" ds))
    [ ("two-party", two_party ()); ("ring-4", ring 4); ("supply-less ring-3", ring 3) ]

let test_timelock_underslack_counterexample () =
  (* Slack below the propagation cost: the static pass must reject the
     assignment and exhibit a concrete redemption path that cannot finish
     before the expiry — the paper's Sec 3 violation, without simulation. *)
  let ds = V.herlihy_preflight ~graph:(ring 4) ~delta:15.0 ~timelock_slack:(-1.0) ~start_time:0.0 in
  let errs = D.errors ds in
  Alcotest.(check bool) "rejected" true (errs <> []);
  Alcotest.(check (list string)) "every error is a timelock-order violation"
    [ "T002-timelock-order" ] (error_rules ds);
  List.iter
    (fun d ->
      Alcotest.(check bool) "names the Sec 3 violation" true
        (Astring.String.is_infix ~affix:"Sec 3 violation" d.D.message);
      Alcotest.(check bool) "carries a counterexample path" true
        (Astring.String.is_infix ~affix:"redeems (" d.D.message))
    errs;
  (* The generous default accepts the same graph (checked above), so the
     verdict really turns on the slack. *)
  Alcotest.(check bool) "slack 0 is still enough" false
    (D.has_errors (V.herlihy_preflight ~graph:(ring 4) ~delta:15.0 ~timelock_slack:0.0 ~start_time:0.0))

let test_timelock_secret_unreachable () =
  (* The supply-chain DAG's carrier only receives: no redemption of its
     own can ever reveal the secret to it. *)
  let ds = V.herlihy_preflight ~graph:(supply_chain ()) ~delta:15.0 ~timelock_slack:2.0 ~start_time:0.0 in
  Alcotest.(check (list string)) "carrier cannot learn the secret"
    [ "T001-secret-unreachable" ] (error_rules ds)

let test_timelock_bad_delta () =
  let ds = Timelock.verify ~graph:(two_party ()) ~delta:0.0 ~timelock_slack:2.0 ~start_time:0.0 in
  Alcotest.(check bool) "delta must be positive" true (has "T004-bad-delta" (D.errors ds))

(* --- Pass 3: contract state machines --------------------------------------- *)

let test_htlc_automaton_sound () =
  let spec = Probes.htlc () in
  Alcotest.(check (list string)) "no errors" [] (error_rules (V.contract spec));
  match State_machine.explore spec with
  | Error e -> Alcotest.fail e
  | Ok auto ->
      Alcotest.(check bool) "not truncated" false (State_machine.truncated auto);
      let classes = State_machine.classes auto in
      Alcotest.(check bool) "redeem reachable" true (List.mem State_machine.Redeemed classes);
      Alcotest.(check bool) "refund reachable" true (List.mem State_machine.Refunded classes);
      Alcotest.(check bool) "no off-template states" false (List.mem State_machine.Other classes);
      (* P, RD, RF — and nothing else: the explicit Algorithm 1 automaton. *)
      Alcotest.(check int) "three states" 3 (State_machine.node_count auto);
      (* Every terminal paid out the full deposit exactly. *)
      List.iter
        (fun (n : State_machine.node) ->
          match n.State_machine.cls with
          | State_machine.Redeemed | State_machine.Refunded ->
              Alcotest.(check bool)
                ("terminal " ^ string_of_int n.State_machine.id ^ " conserves the deposit")
                true
                (Amount.equal n.State_machine.paid (coin 1000));
              Alcotest.(check (list (pair string int))) "terminal is absorbing" []
                n.State_machine.succs
          | _ -> ())
        (State_machine.nodes auto)

let test_htlc_stuck_state_detected () =
  (* Strip the probe set down to wrong-secret redemptions: the automaton
     degenerates to a single Published state with no exit, which the
     checker must flag as locked funds. *)
  let spec = Probes.htlc () in
  let crippled =
    {
      spec with
      State_machine.probes =
        List.filter
          (fun (p : State_machine.probe) ->
            Astring.String.is_prefix ~affix:"redeem/bad" p.State_machine.label)
          spec.State_machine.probes;
    }
  in
  let ds = V.contract crippled in
  Alcotest.(check (list string)) "stuck state reported" [ "S001-stuck-state" ] (error_rules ds)

let test_centralized_and_witness_sound () =
  Alcotest.(check (list string)) "ac3tw swap contract clean" []
    (error_rules (V.contract (Probes.centralized ())));
  let ds = V.contract (Probes.witness ()) in
  Alcotest.(check (list string)) "witness contract clean" [] (error_rules ds);
  match State_machine.explore (Probes.witness ()) with
  | Error e -> Alcotest.fail e
  | Ok auto ->
      Alcotest.(check bool) "refund authorization reachable" true
        (List.mem State_machine.Refunded (State_machine.classes auto))

(* --- The ?verify preflight hooks --------------------------------------------- *)

let fast_universe ?(seed = 7) ~chains n =
  Scenarios.make_universe ~seed ~block_interval:5.0 ~confirm_depth:3 ~chains
    (Scenarios.identities ~ns:(Printf.sprintf "tv%d" seed) n) ()

let test_herlihy_verify_rejects_underslack () =
  let chains = List.init 4 (Printf.sprintf "chain%d") in
  let u, participants = fast_universe ~seed:801 ~chains 4 in
  Universe.run_until u 50.0;
  let ids' = List.map Participant.identity participants in
  let graph = Scenarios.ring_graph ~chains ids' ~timestamp:(Universe.now u) in
  let config =
    { (Herlihy.default_config ~delta:(Universe.max_delta u)) with Herlihy.timelock_slack = -1.0 }
  in
  let before = Universe.now u in
  (match Herlihy.execute u ~config ~graph ~participants ~verify:true () with
  | Ok _ -> Alcotest.fail "under-slack assignment accepted"
  | Error e ->
      Alcotest.(check bool) "names the violated rule" true
        (Astring.String.is_infix ~affix:"T002-timelock-order" e));
  (* Rejected before anything touched a chain: no virtual time passed. *)
  Alcotest.(check (float 1e-9)) "no simulation ran" before (Universe.now u)

let test_nolan_verify_raises () =
  let u, participants = fast_universe ~seed:802 ~chains:[ "btc"; "eth" ] 2 in
  Universe.run_until u 50.0;
  let ids' = List.map Participant.identity participants in
  let graph = Scenarios.two_party_graph ~chain1:"btc" ~chain2:"eth" ids' ~timestamp:(Universe.now u) in
  let config =
    { (Herlihy.default_config ~delta:(Universe.max_delta u)) with Herlihy.timelock_slack = -5.0 }
  in
  match Nolan.execute u ~config ~graph ~participants ~verify:true () with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "carries the diagnostics" true
        (Astring.String.is_infix ~affix:"T002-timelock-order" msg)
  | _ -> Alcotest.fail "under-slack two-party swap accepted"

let test_herlihy_verify_commits () =
  let u, participants = fast_universe ~seed:803 ~chains:[ "btc"; "eth" ] 2 in
  Universe.run_until u 50.0;
  let ids' = List.map Participant.identity participants in
  let graph = Scenarios.two_party_graph ~chain1:"btc" ~chain2:"eth" ids' ~timestamp:(Universe.now u) in
  let config =
    { (Herlihy.default_config ~delta:(Universe.max_delta u)) with Herlihy.timeout = 5000.0 }
  in
  match Herlihy.execute u ~config ~graph ~participants ~verify:true () with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "committed" true r.Herlihy.committed;
      Alcotest.(check bool) "atomic" true r.Herlihy.atomic

let test_ac3wn_preflight_all_scenarios () =
  (* AC3WN's static obligation is well-formedness only: every built-in
     scenario — including the Fig 7 shapes — must pass. *)
  List.iter
    (fun (name, graph) ->
      Alcotest.(check (list string)) (name ^ " accepted") [] (error_rules (V.ac3wn_preflight ~graph)))
    [
      ("two-party", two_party ());
      ("ring-4", ring 4);
      ("cyclic", cyclic ());
      ("disconnected", disconnected ());
      ("supply-chain", supply_chain ());
    ]

(* --- diagnostics plumbing: dedupe, JSON, location attribution ---------- *)

let test_diagnostic_dedupe () =
  let d1 = D.error ~rule:"X001" ~location:"here" "same" in
  let d2 = D.error ~rule:"X001" ~location:"here" "different" in
  let deduped = D.dedupe [ d1; d2; d1; d1; d2 ] in
  Alcotest.(check int) "exact repeats dropped" 2 (List.length deduped);
  Alcotest.(check bool) "order and content preserved" true (deduped = [ d1; d2 ])

let test_diagnostic_json () =
  let module Json = Ac3_crypto.Codec.Json in
  let d = D.warning ~rule:"S005-truncated" ~location:"automaton" "bound hit" in
  let j = D.to_json d in
  Alcotest.(check string) "severity" "warning" (Json.to_str (Json.member "severity" j));
  Alcotest.(check string) "rule" "S005-truncated" (Json.to_str (Json.member "rule" j));
  Alcotest.(check string) "message" "bound hit" (Json.to_str (Json.member "message" j))

let test_state_machine_max_nodes () =
  (* A user-lowered bound must still surface as S005 — the verdict only
     covers the explored prefix. *)
  let ds = V.contract (Probes.htlc ~max_nodes:2 ()) in
  Alcotest.(check bool) "S005 at user bound" true (has "S005-truncated" ds);
  let default = V.contract (Probes.htlc ()) in
  Alcotest.(check bool) "no S005 at default bound" false (has "S005-truncated" default)

let test_contract_name_attribution () =
  let ds = V.contract ~name:"htlc" (Probes.htlc ()) in
  Alcotest.(check bool) "diagnostics present" true (ds <> []);
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "location %S names the contract" d.D.location)
        true
        (Astring.String.is_prefix ~affix:"htlc: " d.D.location))
    ds

let () =
  Alcotest.run "verify"
    [
      ( "graph-lint",
        [
          Alcotest.test_case "structural rules (G001-G004)" `Quick test_lint_edges_structural;
          Alcotest.test_case "profiles split on Fig 7 (G005/G006)" `Quick test_lint_profiles;
          Alcotest.test_case "conservation and capacity (G007-G009)" `Quick
            test_lint_conservation_and_capacity;
          Alcotest.test_case "G008 order is chain-sorted" `Quick test_capacity_order_deterministic;
        ] );
      ( "timelock",
        [
          Alcotest.test_case "assignment matches Herlihy" `Quick test_timelock_assign_matches_herlihy;
          Alcotest.test_case "default slack passes" `Quick test_timelock_default_config_passes;
          Alcotest.test_case "under-slack yields Sec 3 counterexample" `Quick
            test_timelock_underslack_counterexample;
          Alcotest.test_case "sink participant cannot learn secret" `Quick
            test_timelock_secret_unreachable;
          Alcotest.test_case "non-positive delta rejected" `Quick test_timelock_bad_delta;
        ] );
      ( "state-machine",
        [
          Alcotest.test_case "HTLC automaton sound" `Quick test_htlc_automaton_sound;
          Alcotest.test_case "stuck state detected" `Quick test_htlc_stuck_state_detected;
          Alcotest.test_case "AC3TW and witness contracts sound" `Quick
            test_centralized_and_witness_sound;
        ] );
      ( "preflight",
        [
          Alcotest.test_case "herlihy rejects under-slack statically" `Quick
            test_herlihy_verify_rejects_underslack;
          Alcotest.test_case "nolan raises on rejected swap" `Quick test_nolan_verify_raises;
          Alcotest.test_case "herlihy commits with verification on" `Slow
            test_herlihy_verify_commits;
          Alcotest.test_case "ac3wn accepts all scenarios" `Quick test_ac3wn_preflight_all_scenarios;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "dedupe drops exact repeats" `Quick test_diagnostic_dedupe;
          Alcotest.test_case "stable JSON fields" `Quick test_diagnostic_json;
          Alcotest.test_case "user node bound yields S005" `Quick test_state_machine_max_nodes;
          Alcotest.test_case "locations name the contract" `Quick test_contract_name_attribution;
        ] );
    ]
