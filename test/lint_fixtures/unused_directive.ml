(* Fixture: a directive that suppresses nothing is a D000 warning. *)

(* ac3-lint: allow D002 — nothing here draws randomness *)
let fine x = x + 1
