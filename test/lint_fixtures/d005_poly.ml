(* Fixture: D005 polymorphic compare / hash. *)

let bad xs = List.sort compare xs

(* ac3-lint: allow D005 — fixture: hashing an immutable pair *)
let ok v = Hashtbl.hash v
