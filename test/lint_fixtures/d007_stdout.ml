(* Fixture: D007 stdout printing from library code. *)

let bad () = print_endline "hello"

(* ac3-lint: allow D007 — fixture: a justified debug escape *)
let ok x = Printf.printf "%d" x
