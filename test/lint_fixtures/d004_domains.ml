(* Fixture: D004 domain primitives outside lib/par. *)

let bad f = Domain.spawn f

(* ac3-lint: allow D004 — fixture: a justified atomic counter *)
let ok () = Atomic.make 0
