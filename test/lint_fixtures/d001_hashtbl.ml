(* Fixture: D001 unordered hashtable iteration. Parsed by the linter,
   never compiled. *)

let bad tbl = Hashtbl.iter (fun k v -> ignore (k, v)) tbl

(* ac3-lint: allow D001 — fixture: a justified commutative fold *)
let ok tbl = Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0

(* Functorial tables are caught through the module-name heuristic. *)
let bad_functorial tbl = Outpoint.Table.fold (fun _ _ acc -> acc) tbl []
