(* Fixture: D003 wall-clock reads outside bench/. *)

let bad () = Unix.gettimeofday ()

(* ac3-lint: allow D003 — fixture: a justified micro-benchmark *)
let ok () = Sys.time ()
