(* Fixture: D006 unsorted directory listing. *)

let bad dir = Sys.readdir dir

(* Nested anywhere inside a sort call's arguments: sanctioned, no
   directive needed. *)
let fine dir = List.sort String.compare (Array.to_list (Sys.readdir dir))

(* ac3-lint: allow D006 — fixture: order handled by the caller *)
let ok dir = Sys.readdir dir
