(* Fixture: D008 domain-local storage outside lib/par. *)

let bad () = Domain.DLS.new_key (fun () -> 0)

(* ac3-lint: allow D008 — fixture: a justified key *)
let ok k = Domain.DLS.get k
