(* Fixture: D002 ambient Random state. *)

let bad () = Random.int 10

(* ac3-lint: allow D002 — fixture: a justified draw *)
let ok () = Random.float 1.0
