(* Fixture: a directive without a reason is itself a D000 error. *)

(* ac3-lint: allow D001 *)
let bad tbl = Hashtbl.iter (fun _ _ -> ()) tbl
